// Package nicsim models the FPGA NIC pipeline around PLB: the basic
// pipeline's pkt_dir classifier (priority / RSS / PLB paths, full-packet or
// header-only delivery), the VLAN-based SR-IOV VF demultiplexer, the
// payload buffer backing header-payload split, and the latency (Tab. 4) and
// FPGA resource (Tab. 5) ledgers.
package nicsim

import (
	"fmt"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Class is a pkt_dir traffic class.
type Class int

// Traffic classes.
const (
	// ClassPLB data packets are sprayed per packet and reordered at egress.
	ClassPLB Class = iota
	// ClassRSS data packets keep flow affinity: stateful specials such as
	// Zoonet probes, health checks and vSwitch-learning packets, where PLB's
	// inter-core consistency overhead is not worth their tiny volume.
	ClassRSS
	// ClassPriority protocol packets (BGP/BFD) ride dedicated priority
	// queues so dataplane saturation cannot break control-plane peering.
	ClassPriority
)

func (c Class) String() string {
	switch c {
	case ClassPLB:
		return "PLB"
	case ClassRSS:
		return "RSS"
	case ClassPriority:
		return "priority"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DeliveryMode selects full-packet or header-only DMA.
type DeliveryMode int

// Delivery modes.
const (
	FullPacket DeliveryMode = iota
	// HeaderOnly ships only headers over PCIe; payloads wait in the NIC
	// payload buffer until egress reassembly (appendix §A). Critical for
	// jumbo frames (up to 8,500B payload).
	HeaderOnly
)

func (m DeliveryMode) String() string {
	if m == HeaderOnly {
		return "header-only"
	}
	return "full-packet"
}

// Rule is one programmable pkt_dir row. Zero fields are wildcards.
type Rule struct {
	Proto   packet.IPProtocol // inner/outer protocol to match (0 = any)
	DstPort uint16            // L4 destination port (0 = any)
	Class   Class
	Mode    DeliveryMode
}

// Classifier is a pod's programmable pkt_dir table.
type Classifier struct {
	rules        []Rule
	defaultClass Class
	defaultMode  DeliveryMode
}

// NewClassifier creates a classifier whose default (no rule matched) is
// the given class and mode.
func NewClassifier(defaultClass Class, defaultMode DeliveryMode) *Classifier {
	return &Classifier{defaultClass: defaultClass, defaultMode: defaultMode}
}

// DefaultClassifier returns the production pkt_dir: BGP (TCP/179) and BFD
// (UDP/3784, UDP/4784) to the priority path, ICMP health checks to RSS,
// everything else PLB full-packet.
func DefaultClassifier() *Classifier {
	c := NewClassifier(ClassPLB, FullPacket)
	c.AddRule(Rule{Proto: packet.IPProtocolTCP, DstPort: 179, Class: ClassPriority})
	c.AddRule(Rule{Proto: packet.IPProtocolUDP, DstPort: 3784, Class: ClassPriority})
	c.AddRule(Rule{Proto: packet.IPProtocolUDP, DstPort: 4784, Class: ClassPriority})
	c.AddRule(Rule{Proto: packet.IPProtocolICMP, Class: ClassRSS})
	return c
}

// AddRule appends a rule (first match wins).
func (c *Classifier) AddRule(r Rule) { c.rules = append(c.rules, r) }

// NumRules returns the rule count.
func (c *Classifier) NumRules() int { return len(c.rules) }

// Classify returns the class and delivery mode for a parsed packet. It
// matches on the innermost flow (the tenant's traffic), falling back to the
// outer flow for non-encapsulated packets.
func (c *Classifier) Classify(p *packet.Parsed) (Class, DeliveryMode) {
	flow := p.InnerFlow()
	for _, r := range c.rules {
		if r.Proto != 0 && r.Proto != flow.Proto {
			continue
		}
		if r.DstPort != 0 && r.DstPort != flow.DPort {
			continue
		}
		return r.Class, r.Mode
	}
	return c.defaultClass, c.defaultMode
}

// ClassifyFlow is Classify for callers holding a five-tuple instead of a
// parsed packet (the simulation fast path).
func (c *Classifier) ClassifyFlow(flow packet.FiveTuple) (Class, DeliveryMode) {
	for _, r := range c.rules {
		if r.Proto != 0 && r.Proto != flow.Proto {
			continue
		}
		if r.DstPort != 0 && r.DstPort != flow.DPort {
			continue
		}
		return r.Class, r.Mode
	}
	return c.defaultClass, c.defaultMode
}

// VFDemux maps 802.1Q VLAN IDs to (pod, VF) — the basic pipeline's SR-IOV
// demultiplexer (appendix §A: uplink switches tag packets per VF).
type VFDemux struct {
	m map[uint16]VFTarget
}

// VFTarget identifies a pod-owned virtual function.
type VFTarget struct {
	PodID uint16
	VF    int
}

// NewVFDemux creates an empty demux table.
func NewVFDemux() *VFDemux { return &VFDemux{m: make(map[uint16]VFTarget)} }

// Bind maps a VLAN ID to a VF. Rebinding an in-use VLAN is an error.
func (d *VFDemux) Bind(vlan uint16, t VFTarget) error {
	if vlan == 0 || vlan > 4094 {
		return fmt.Errorf("nicsim: VLAN %d out of range", vlan)
	}
	if _, ok := d.m[vlan]; ok {
		return fmt.Errorf("nicsim: VLAN %d already bound", vlan)
	}
	d.m[vlan] = t
	return nil
}

// Unbind releases a VLAN.
func (d *VFDemux) Unbind(vlan uint16) { delete(d.m, vlan) }

// Lookup resolves a VLAN tag.
func (d *VFDemux) Lookup(vlan uint16) (VFTarget, bool) {
	t, ok := d.m[vlan]
	return t, ok
}

// Len returns the number of bound VLANs.
func (d *VFDemux) Len() int { return len(d.m) }

// ModuleLatency is one pipeline module's RX/TX contribution.
type ModuleLatency struct {
	RX, TX sim.Duration
}

// LatencyModel reproduces Tab. 4: per-module NIC pipeline latency.
type LatencyModel struct {
	Basic       ModuleLatency
	OverloadDet ModuleLatency
	PLB         ModuleLatency
	DMA         ModuleLatency
}

// DefaultLatencyModel returns the paper's measured values (µs): basic
// 0.58/0.84, overload detection 0.10/0, PLB 0.05/0.35, DMA 3.17/2.98.
func DefaultLatencyModel() LatencyModel {
	us := func(f float64) sim.Duration { return sim.Duration(f * float64(sim.Microsecond)) }
	return LatencyModel{
		Basic:       ModuleLatency{RX: us(0.58), TX: us(0.84)},
		OverloadDet: ModuleLatency{RX: us(0.10), TX: 0},
		PLB:         ModuleLatency{RX: us(0.05), TX: us(0.35)},
		DMA:         ModuleLatency{RX: us(3.17), TX: us(2.98)},
	}
}

// IngressLatency is the NIC time from wire to CPU for a class.
func (m LatencyModel) IngressLatency(c Class) sim.Duration {
	d := m.Basic.RX + m.DMA.RX
	if c != ClassPriority {
		d += m.OverloadDet.RX
	}
	if c == ClassPLB {
		d += m.PLB.RX
	}
	return d
}

// EgressLatency is the NIC time from CPU to wire for a class.
func (m LatencyModel) EgressLatency(c Class) sim.Duration {
	d := m.Basic.TX + m.DMA.TX
	if c == ClassPLB {
		d += m.PLB.TX
	}
	return d
}

// RoundTrip is ingress+egress NIC latency (paper: ~8µs total, DMA
// dominated).
func (m LatencyModel) RoundTrip(c Class) sim.Duration {
	return m.IngressLatency(c) + m.EgressLatency(c)
}

// Resources is a module's FPGA footprint as fractions of the chip.
type Resources struct {
	LUTPct  float64
	BRAMPct float64
}

// ResourceModel reproduces Tab. 5 plus the FPGA totals (912,800 LUTs and
// 265 Mbit BRAM per card).
type ResourceModel struct {
	TotalLUTs     int
	TotalBRAMBits int64
	Modules       map[string]Resources
}

// DefaultResourceModel returns the paper's synthesis results.
func DefaultResourceModel() ResourceModel {
	return ResourceModel{
		TotalLUTs:     912800,
		TotalBRAMBits: 265 << 20,
		Modules: map[string]Resources{
			"basic":    {LUTPct: 42.9, BRAMPct: 38.2},
			"overload": {LUTPct: 2.0, BRAMPct: 0},
			"plb":      {LUTPct: 12.6, BRAMPct: 5.0},
			"dma":      {LUTPct: 2.5, BRAMPct: 1.3},
		},
	}
}

// Sum returns the total LUT/BRAM utilization percentages.
func (r ResourceModel) Sum() Resources {
	var s Resources
	for _, m := range r.Modules {
		s.LUTPct += m.LUTPct
		s.BRAMPct += m.BRAMPct
	}
	return s
}

// Headroom returns the fraction of the FPGA left for the future offloading
// plans of §7 (sessions, crypto, billing).
func (r ResourceModel) Headroom() Resources {
	s := r.Sum()
	return Resources{LUTPct: 100 - s.LUTPct, BRAMPct: 100 - s.BRAMPct}
}

// PLBBRAMBytes computes the on-chip memory PLB's reorder structures consume
// for a pod allocation: per queue-entry, the FIFO reorder info (PSN 2B +
// timestamp 6B), the BITMAP mirror (valid+PSN ≈ 2B), and a BUF descriptor
// (16B; packet bytes themselves live in the card's payload memory).
func PLBBRAMBytes(queues, depth int) int64 {
	const perEntry = 2 + 6 + 2 + 16
	return int64(queues) * int64(depth) * perEntry
}

// PayloadBuffer models the NIC payload memory for header-payload split: a
// capacity-bounded store with FIFO eviction. Evicted payloads force the
// plb_reorder to drop late headers (paper §4.1's "payload already
// released").
type PayloadBuffer struct {
	capacity int64
	used     int64
	entries  map[uint64]int // id -> size
	order    []uint64       // FIFO eviction order

	Stores    uint64
	Evictions uint64
}

// NewPayloadBuffer creates a buffer of the given capacity in bytes.
func NewPayloadBuffer(capacity int64) *PayloadBuffer {
	if capacity <= 0 {
		capacity = 64 << 20
	}
	return &PayloadBuffer{capacity: capacity, entries: make(map[uint64]int)}
}

// Store parks a payload of size bytes under id, evicting the oldest
// payloads if needed. It returns false if size exceeds the whole buffer.
func (b *PayloadBuffer) Store(id uint64, size int) bool {
	if int64(size) > b.capacity {
		return false
	}
	if _, dup := b.entries[id]; dup {
		return false
	}
	for b.used+int64(size) > b.capacity && len(b.order) > 0 {
		oldest := b.order[0]
		b.order = b.order[1:]
		if sz, ok := b.entries[oldest]; ok {
			delete(b.entries, oldest)
			b.used -= int64(sz)
			b.Evictions++
		}
	}
	b.entries[id] = size
	b.order = append(b.order, id)
	b.used += int64(size)
	b.Stores++
	return true
}

// Take removes and returns whether the payload is still resident (egress
// reassembly).
func (b *PayloadBuffer) Take(id uint64) bool {
	sz, ok := b.entries[id]
	if !ok {
		return false
	}
	delete(b.entries, id)
	b.used -= int64(sz)
	return true
}

// Has reports residency without removing.
func (b *PayloadBuffer) Has(id uint64) bool {
	_, ok := b.entries[id]
	return ok
}

// Used returns resident bytes.
func (b *PayloadBuffer) Used() int64 { return b.used }

// PCIeSavings returns the fraction of PCIe bandwidth header-payload split
// saves for a packet of the given total and header sizes.
func PCIeSavings(totalBytes, headerBytes int) float64 {
	if totalBytes <= 0 || headerBytes >= totalBytes {
		return 0
	}
	return 1 - float64(headerBytes)/float64(totalBytes)
}
