package nicsim

import (
	"math"
	"testing"
	"testing/quick"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

func flow(proto packet.IPProtocol, dport uint16) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2},
		Proto: proto, SPort: 40000, DPort: dport,
	}
}

func TestClassStrings(t *testing.T) {
	if ClassPLB.String() != "PLB" || ClassRSS.String() != "RSS" || ClassPriority.String() != "priority" {
		t.Fatal("class strings")
	}
	if Class(9).String() != "class(9)" {
		t.Fatal("unknown class string")
	}
	if FullPacket.String() != "full-packet" || HeaderOnly.String() != "header-only" {
		t.Fatal("mode strings")
	}
}

func TestDefaultClassifier(t *testing.T) {
	c := DefaultClassifier()
	cases := []struct {
		f    packet.FiveTuple
		want Class
	}{
		{flow(packet.IPProtocolTCP, 179), ClassPriority},  // BGP
		{flow(packet.IPProtocolUDP, 3784), ClassPriority}, // BFD
		{flow(packet.IPProtocolUDP, 4784), ClassPriority}, // multihop BFD
		{flow(packet.IPProtocolICMP, 0), ClassRSS},        // health check
		{flow(packet.IPProtocolTCP, 443), ClassPLB},       // tenant data
		{flow(packet.IPProtocolUDP, 53), ClassPLB},
	}
	for i, cse := range cases {
		got, _ := c.ClassifyFlow(cse.f)
		if got != cse.want {
			t.Errorf("case %d: class = %v, want %v", i, got, cse.want)
		}
	}
	if c.NumRules() != 4 {
		t.Fatalf("rules = %d", c.NumRules())
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	c := NewClassifier(ClassPLB, FullPacket)
	c.AddRule(Rule{Proto: packet.IPProtocolTCP, Class: ClassRSS})
	c.AddRule(Rule{Proto: packet.IPProtocolTCP, DstPort: 179, Class: ClassPriority})
	got, _ := c.ClassifyFlow(flow(packet.IPProtocolTCP, 179))
	if got != ClassRSS {
		t.Fatalf("first-match = %v, want RSS (rule order)", got)
	}
}

func TestClassifierHeaderOnlyMode(t *testing.T) {
	c := NewClassifier(ClassPLB, HeaderOnly)
	_, mode := c.ClassifyFlow(flow(packet.IPProtocolTCP, 80))
	if mode != HeaderOnly {
		t.Fatal("default mode not applied")
	}
	c.AddRule(Rule{Proto: packet.IPProtocolUDP, Class: ClassPLB, Mode: FullPacket})
	_, mode = c.ClassifyFlow(flow(packet.IPProtocolUDP, 80))
	if mode != FullPacket {
		t.Fatal("rule mode not applied")
	}
}

func TestClassifyParsedUsesInnerFlow(t *testing.T) {
	// Build a VXLAN packet whose inner flow is BGP: must classify as
	// priority even though the outer is UDP/4789.
	b := packet.NewBuilder(512)
	pkt := packet.BuildVXLANPacket(b, &packet.VXLANSpec{
		OuterSrc: packet.IPv4Addr{1, 1, 1, 1}, OuterDst: packet.IPv4Addr{2, 2, 2, 2},
		OuterSrcPort: 9999, VNI: 7,
		InnerSrc: packet.IPv4Addr{10, 0, 0, 1}, InnerDst: packet.IPv4Addr{10, 0, 0, 2},
		InnerProto: packet.IPProtocolTCP, InnerSPort: 33000, InnerDPort: 179,
	})
	var p packet.Parsed
	if err := packet.Parse(pkt, &p); err != nil {
		t.Fatal(err)
	}
	class, _ := DefaultClassifier().Classify(&p)
	if class != ClassPriority {
		t.Fatalf("class = %v, want priority (inner BGP)", class)
	}
}

func TestVFDemux(t *testing.T) {
	d := NewVFDemux()
	if err := d.Bind(100, VFTarget{PodID: 1, VF: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(100, VFTarget{PodID: 2, VF: 0}); err == nil {
		t.Fatal("double bind accepted")
	}
	if err := d.Bind(0, VFTarget{}); err == nil {
		t.Fatal("VLAN 0 accepted")
	}
	if err := d.Bind(4095, VFTarget{}); err == nil {
		t.Fatal("VLAN 4095 accepted")
	}
	tgt, ok := d.Lookup(100)
	if !ok || tgt.PodID != 1 || tgt.VF != 2 {
		t.Fatalf("lookup = %+v %v", tgt, ok)
	}
	if _, ok := d.Lookup(200); ok {
		t.Fatal("unbound VLAN resolved")
	}
	d.Unbind(100)
	if d.Len() != 0 {
		t.Fatal("unbind failed")
	}
}

func TestLatencyModelTab4(t *testing.T) {
	m := DefaultLatencyModel()
	us := func(d sim.Duration) float64 { return d.Micros() }

	// Tab. 4 sums: RX 3.90µs, TX 4.17µs for the PLB path.
	rx := m.IngressLatency(ClassPLB)
	tx := m.EgressLatency(ClassPLB)
	if math.Abs(us(rx)-3.90) > 0.01 {
		t.Fatalf("PLB ingress = %.2fµs, want 3.90", us(rx))
	}
	if math.Abs(us(tx)-4.17) > 0.01 {
		t.Fatalf("PLB egress = %.2fµs, want 4.17", us(tx))
	}
	// Paper: overall NIC RX+TX ≈ 8µs.
	if rt := m.RoundTrip(ClassPLB); math.Abs(us(rt)-8.07) > 0.02 {
		t.Fatalf("round trip = %.2fµs", us(rt))
	}
	// Priority path skips overload detection and PLB.
	if m.IngressLatency(ClassPriority) >= rx {
		t.Fatal("priority ingress should be cheaper than PLB")
	}
	// RSS path skips only PLB.
	rss := m.IngressLatency(ClassRSS)
	if rss >= rx || rss <= m.IngressLatency(ClassPriority) {
		t.Fatalf("RSS ingress = %v, want between priority and PLB", rss)
	}
	// DMA dominates (paper's observation).
	if m.DMA.RX < m.Basic.RX+m.OverloadDet.RX+m.PLB.RX {
		t.Fatal("DMA should dominate the ingress latency")
	}
}

func TestResourceModelTab5(t *testing.T) {
	r := DefaultResourceModel()
	s := r.Sum()
	if math.Abs(s.LUTPct-60.0) > 0.01 {
		t.Fatalf("LUT sum = %.1f%%, want 60.0%%", s.LUTPct)
	}
	if math.Abs(s.BRAMPct-44.5) > 0.01 {
		t.Fatalf("BRAM sum = %.1f%%, want 44.5%%", s.BRAMPct)
	}
	h := r.Headroom()
	if h.LUTPct < 39 || h.BRAMPct < 55 {
		t.Fatalf("headroom = %+v, paper reserves room for future offloads", h)
	}
	if r.TotalLUTs != 912800 || r.TotalBRAMBits != 265<<20 {
		t.Fatal("FPGA totals wrong")
	}
}

func TestPLBBRAMWithinBudget(t *testing.T) {
	// 8 queues x 4K entries must fit inside PLB's 5% BRAM share of a
	// 265Mbit chip (= ~1.66MB).
	bytes := PLBBRAMBytes(8, 4096)
	budget := int64(float64(265<<20) * 0.05 / 8)
	if bytes > budget {
		t.Fatalf("PLB reorder structures = %d B > 5%% BRAM budget %d B", bytes, budget)
	}
	if bytes <= 0 {
		t.Fatal("non-positive BRAM estimate")
	}
	// Scales linearly in queues.
	if PLBBRAMBytes(4, 4096)*2 != bytes {
		t.Fatal("BRAM not linear in queue count")
	}
}

func TestPayloadBufferStoreTake(t *testing.T) {
	b := NewPayloadBuffer(1000)
	if !b.Store(1, 400) || !b.Store(2, 400) {
		t.Fatal("stores failed")
	}
	if b.Used() != 800 {
		t.Fatalf("used = %d", b.Used())
	}
	if b.Store(1, 100) {
		t.Fatal("duplicate id accepted")
	}
	if !b.Has(1) || !b.Take(1) {
		t.Fatal("take failed")
	}
	if b.Take(1) {
		t.Fatal("double take succeeded")
	}
	if b.Used() != 400 {
		t.Fatalf("used = %d", b.Used())
	}
}

func TestPayloadBufferEviction(t *testing.T) {
	b := NewPayloadBuffer(1000)
	b.Store(1, 400)
	b.Store(2, 400)
	// Needs 400 more: evicts id 1 (oldest).
	if !b.Store(3, 400) {
		t.Fatal("store with eviction failed")
	}
	if b.Has(1) {
		t.Fatal("oldest payload not evicted")
	}
	if !b.Has(2) || !b.Has(3) {
		t.Fatal("wrong payloads evicted")
	}
	if b.Evictions != 1 {
		t.Fatalf("evictions = %d", b.Evictions)
	}
	// Oversized store rejected outright.
	if b.Store(9, 2000) {
		t.Fatal("oversized store accepted")
	}
}

func TestPayloadBufferDefaults(t *testing.T) {
	b := NewPayloadBuffer(0)
	if !b.Store(1, 1<<20) {
		t.Fatal("default-capacity store failed")
	}
}

func TestPayloadBufferInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewPayloadBuffer(4096)
		id := uint64(0)
		for _, op := range ops {
			if op%3 == 0 {
				id++
				b.Store(id, int(op%2048)+1)
			} else if id > 0 {
				b.Take(uint64(op) % id)
			}
			if b.Used() < 0 || b.Used() > 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCIeSavings(t *testing.T) {
	// A jumbo frame: 8500B payload, ~100B headers => >98% savings.
	s := PCIeSavings(8600, 100)
	if s < 0.98 {
		t.Fatalf("jumbo savings = %v", s)
	}
	// 256B packet with 100B headers.
	if got := PCIeSavings(256, 100); math.Abs(got-0.609) > 0.01 {
		t.Fatalf("small packet savings = %v", got)
	}
	if PCIeSavings(100, 100) != 0 || PCIeSavings(0, 10) != 0 {
		t.Fatal("degenerate savings not zero")
	}
}

func BenchmarkClassifyFlow(b *testing.B) {
	c := DefaultClassifier()
	f := flow(packet.IPProtocolTCP, 443)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ClassifyFlow(f)
	}
}
