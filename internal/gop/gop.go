// Package gop implements Albatross's gateway overload protection (paper
// §4.3): the two-stage tenant rate limiter that protects the CPU from
// heavy-hitter tenants using ~2MB of FPGA SRAM instead of the >200MB a
// per-tenant meter table would need for a million tenants.
//
// Stage 1 (color_table) is a 4K-entry meter array indexed by VNI % 4K that
// applies a coarse per-entry rate; traffic exceeding it is *marked* (not
// dropped) and handed to stage 2. Stage 2 (meter_table) hashes the VNI into
// a 4K-entry fine-grained meter array; marked traffic that also exceeds the
// fine rate is dropped. A 128-entry pre_check table in front of both stages
// handles two special cases: top-tier tenants configured to bypass rate
// limiting entirely, and detected heavy hitters that are early-limited in
// the 128-entry pre_meter so their excess never contaminates the shared
// meter_table entries (the hash-collision false-positive fix). Heavy
// hitters are found by sampling stage-2 violations — dominant tenants are
// sampled proportionally more often — and installing any tenant whose
// sample count crosses a threshold within a one-second window.
package gop

import (
	"albatross/internal/errs"
	"fmt"

	"albatross/internal/sim"
)

// MeterEntryBytes is the modelled SRAM footprint of one meter entry. The
// paper's arithmetic (">200MB for 1M tenants", "2MB for the two-stage
// scheme") implies ~200B per entry including rate configuration, bucket
// state and metadata.
const MeterEntryBytes = 200

// TokenBucket is a single-rate two-color meter in virtual time.
type TokenBucket struct {
	rate   float64 // tokens (packets) per second
	burst  float64 // bucket depth
	tokens float64
	last   sim.Time
}

// NewTokenBucket creates a meter admitting rate packets/second with the
// given burst. A zero burst defaults to rate/100 (10ms of burst), min 1.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate / 100
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes one token if available at virtual time now. It reports
// whether the packet conforms.
func (tb *TokenBucket) Allow(now sim.Time) bool {
	if now > tb.last {
		tb.tokens += tb.rate * now.Sub(tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// SetRate reconfigures the meter rate.
func (tb *TokenBucket) SetRate(rate float64) { tb.rate = rate }

// Rate returns the configured rate in packets/second.
func (tb *TokenBucket) Rate() float64 { return tb.rate }

// Verdict is the rate limiter's decision for a packet.
type Verdict uint8

// Verdicts.
const (
	// VerdictPass admits the packet to the CPU.
	VerdictPass Verdict = iota
	// VerdictDrop rate-limits the packet in the NIC pipeline.
	VerdictDrop
)

// Config parameterizes the two-stage rate limiter.
type Config struct {
	// ColorEntries is the stage-1 table size (paper: 4K).
	ColorEntries int
	// MeterEntries is the stage-2 table size (paper-scale: 4K).
	MeterEntries int
	// PreEntries is the pre_check/pre_meter size (paper: 128).
	PreEntries int
	// Stage1Rate is the coarse per-entry rate in packets/second.
	Stage1Rate float64
	// Stage2Rate is the fine per-entry rate for marked traffic.
	Stage2Rate float64
	// Burst is the bucket depth in packets for all meters (0 = 10ms of rate).
	Burst float64
	// SampleOneIn samples one in N stage-2 violations for heavy-hitter
	// detection (0 disables detection).
	SampleOneIn int
	// SampleThreshold promotes a tenant to the pre_meter once its samples
	// within SampleWindow reach this count.
	SampleThreshold int
	// SampleWindow is the detection window (paper: effective "in one
	// second").
	SampleWindow sim.Duration
	// Seed feeds the sampler's deterministic RNG.
	Seed uint64
}

// DefaultConfig mirrors the paper's production setup: 4K+4K meters,
// 128-entry pre tables, sampled detection converging within a second.
func DefaultConfig() Config {
	return Config{
		ColorEntries:    4096,
		MeterEntries:    4096,
		PreEntries:      128,
		Stage1Rate:      8e6,
		Stage2Rate:      2e6,
		SampleOneIn:     100,
		SampleThreshold: 50,
		SampleWindow:    sim.Second,
		Seed:            1,
	}
}

// Stats counts rate limiter decisions.
type Stats struct {
	Bypassed      uint64 // pre_check top-tier bypass
	PreMetered    uint64 // packets metered in pre_meter
	PreMeterDrops uint64
	Stage1Conform uint64 // passed the color table
	Stage2Conform uint64 // marked, passed the meter table
	Stage2Drops   uint64
	HeavyInstalls uint64 // tenants promoted to pre_meter
	SamplesTaken  uint64
	PreTableFull  uint64 // promotions skipped for lack of space
}

// preEntry is a pre_check row.
type preEntry struct {
	vni    uint32
	bypass bool
	meter  *TokenBucket
}

// Limiter is the two-stage tenant overload rate limiter.
type Limiter struct {
	cfg   Config
	color []*TokenBucket
	meter []*TokenBucket
	pre   map[uint32]*preEntry // keyed by VNI; size-capped at PreEntries
	rng   *sim.Rand
	stats Stats
	// samples tracks per-VNI sample counts within the current window.
	samples     map[uint32]int
	windowStart sim.Time
}

// NewLimiter creates a rate limiter.
func NewLimiter(cfg Config) (*Limiter, error) {
	if cfg.ColorEntries <= 0 || cfg.MeterEntries <= 0 {
		return nil, fmt.Errorf("gop: table sizes must be positive: %+v: %w", cfg, errs.BadConfig)
	}
	if cfg.PreEntries < 0 {
		return nil, fmt.Errorf("gop: negative PreEntries: %w", errs.BadConfig)
	}
	if cfg.Stage1Rate <= 0 || cfg.Stage2Rate <= 0 {
		return nil, fmt.Errorf("gop: rates must be positive: %w", errs.BadConfig)
	}
	if cfg.SampleWindow <= 0 {
		cfg.SampleWindow = sim.Second
	}
	l := &Limiter{
		cfg:     cfg,
		color:   make([]*TokenBucket, cfg.ColorEntries),
		meter:   make([]*TokenBucket, cfg.MeterEntries),
		pre:     make(map[uint32]*preEntry, cfg.PreEntries),
		rng:     sim.NewRand(cfg.Seed),
		samples: make(map[uint32]int),
	}
	for i := range l.color {
		l.color[i] = NewTokenBucket(cfg.Stage1Rate, cfg.Burst)
	}
	for i := range l.meter {
		l.meter[i] = NewTokenBucket(cfg.Stage2Rate, cfg.Burst)
	}
	return l, nil
}

// Stats returns a snapshot of the counters.
func (l *Limiter) Stats() Stats { return l.stats }

// SRAMBytes returns the modelled on-chip memory of the configured tables.
func (l *Limiter) SRAMBytes() int64 {
	entries := l.cfg.ColorEntries + l.cfg.MeterEntries + 2*l.cfg.PreEntries
	return int64(entries) * MeterEntryBytes
}

// NaiveSRAMBytes returns the memory a per-tenant meter table would need.
func NaiveSRAMBytes(tenants int) int64 { return int64(tenants) * MeterEntryBytes }

// meterIndex hashes a VNI into the stage-2 table (the collision-prone
// mapping the pre_check exists to compensate for).
func (l *Limiter) meterIndex(vni uint32) int {
	h := vni
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return int(h % uint32(l.cfg.MeterEntries))
}

// ConfigureBypass marks a top-tier tenant to skip all rate limiting. It
// fails when the pre table is full.
func (l *Limiter) ConfigureBypass(vni uint32) error {
	if e, ok := l.pre[vni]; ok {
		e.bypass = true
		e.meter = nil
		return nil
	}
	if len(l.pre) >= l.cfg.PreEntries {
		return fmt.Errorf("gop: pre_check table full (%d entries): %w", l.cfg.PreEntries, errs.Exhausted)
	}
	l.pre[vni] = &preEntry{vni: vni, bypass: true}
	return nil
}

// InstallHeavyHitter pins a tenant into the pre_meter at the given rate —
// the control-plane path the paper plans for proactive installs, also used
// internally when sampling detects a dominant tenant.
func (l *Limiter) InstallHeavyHitter(vni uint32, rate float64) error {
	if e, ok := l.pre[vni]; ok {
		if e.bypass {
			return fmt.Errorf("gop: tenant %d is configured bypass", vni)
		}
		e.meter.SetRate(rate)
		return nil
	}
	if len(l.pre) >= l.cfg.PreEntries {
		l.stats.PreTableFull++
		return fmt.Errorf("gop: pre tables full (%d entries): %w", l.cfg.PreEntries, errs.Exhausted)
	}
	l.pre[vni] = &preEntry{vni: vni, meter: NewTokenBucket(rate, l.cfg.Burst)}
	l.stats.HeavyInstalls++
	return nil
}

// RemovePre deletes a tenant's pre_check entry.
func (l *Limiter) RemovePre(vni uint32) { delete(l.pre, vni) }

// PreEntryCount returns the number of occupied pre_check rows.
func (l *Limiter) PreEntryCount() int { return len(l.pre) }

// IsInstalled reports whether the tenant has a pre_meter entry (not bypass).
func (l *Limiter) IsInstalled(vni uint32) bool {
	e, ok := l.pre[vni]
	return ok && !e.bypass
}

// Process runs one packet of tenant vni through the limiter at virtual
// time now.
func (l *Limiter) Process(vni uint32, now sim.Time) Verdict {
	// Pre-check stage.
	if e, ok := l.pre[vni]; ok {
		if e.bypass {
			l.stats.Bypassed++
			return VerdictPass
		}
		l.stats.PreMetered++
		if e.meter.Allow(now) {
			return VerdictPass
		}
		l.stats.PreMeterDrops++
		return VerdictDrop
	}

	// Stage 1: coarse color table.
	if l.color[int(vni)%l.cfg.ColorEntries].Allow(now) {
		l.stats.Stage1Conform++
		return VerdictPass
	}

	// Stage 2: marked traffic, fine meter table.
	if l.meter[l.meterIndex(vni)].Allow(now) {
		l.stats.Stage2Conform++
		return VerdictPass
	}
	l.stats.Stage2Drops++
	l.maybeSample(vni, now)
	return VerdictDrop
}

// maybeSample implements the detection path: stage-2 violations are sampled
// 1-in-N; a tenant crossing the threshold within the window is promoted to
// the pre_meter at the combined two-stage rate.
func (l *Limiter) maybeSample(vni uint32, now sim.Time) {
	if l.cfg.SampleOneIn <= 0 {
		return
	}
	if now.Sub(l.windowStart) > l.cfg.SampleWindow {
		l.windowStart = now
		clear(l.samples)
	}
	if l.rng.Intn(l.cfg.SampleOneIn) != 0 {
		return
	}
	l.stats.SamplesTaken++
	l.samples[vni]++
	if l.samples[vni] >= l.cfg.SampleThreshold {
		// The pre_meter pins the heavy hitter to its fair two-stage rate so
		// its excess stops contaminating shared meter entries.
		_ = l.InstallHeavyHitter(vni, l.cfg.Stage1Rate+l.cfg.Stage2Rate)
		delete(l.samples, vni)
	}
}
