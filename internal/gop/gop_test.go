package gop

import (
	"math"
	"testing"
	"testing/quick"

	"albatross/internal/sim"
)

func TestTokenBucketBasics(t *testing.T) {
	tb := NewTokenBucket(1000, 10) // 1000 pps, burst 10
	// Burst available immediately.
	for i := 0; i < 10; i++ {
		if !tb.Allow(0) {
			t.Fatalf("burst packet %d denied", i)
		}
	}
	if tb.Allow(0) {
		t.Fatal("11th packet at t=0 allowed")
	}
	// After 1ms, one token refilled.
	if !tb.Allow(sim.Time(sim.Millisecond)) {
		t.Fatal("refilled token denied")
	}
	if tb.Allow(sim.Time(sim.Millisecond)) {
		t.Fatal("second packet after 1ms allowed")
	}
}

func TestTokenBucketSteadyRate(t *testing.T) {
	tb := NewTokenBucket(1e6, 100) // 1Mpps
	// Offer 2Mpps for one second: ~1M should conform.
	allowed := 0
	const offered = 2_000_000
	for i := 0; i < offered; i++ {
		now := sim.Time(float64(i) / offered * float64(sim.Second))
		if tb.Allow(now) {
			allowed++
		}
	}
	if math.Abs(float64(allowed)-1e6) > 1e4 {
		t.Fatalf("allowed %d, want ~1M", allowed)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := NewTokenBucket(1000, 5)
	// Long idle must not accumulate more than burst.
	tb.Allow(0)
	n := 0
	for i := 0; i < 100; i++ {
		if tb.Allow(sim.Time(10 * sim.Second)) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("allowed %d after idle, want burst 5", n)
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	tb := NewTokenBucket(1e6, 0)
	if tb.Rate() != 1e6 {
		t.Fatal("rate wrong")
	}
	// Default burst = 10ms of rate = 10000.
	n := 0
	for i := 0; i < 20000; i++ {
		if tb.Allow(0) {
			n++
		}
	}
	if n != 10000 {
		t.Fatalf("default burst = %d, want 10000", n)
	}
	tiny := NewTokenBucket(10, 0)
	if !tiny.Allow(0) {
		t.Fatal("minimum burst must be at least 1")
	}
}

func TestTokenBucketTimeMonotonic(t *testing.T) {
	tb := NewTokenBucket(1000, 1)
	tb.Allow(sim.Time(sim.Second))
	// An out-of-order earlier timestamp must not refill or panic.
	if tb.Allow(sim.Time(sim.Millisecond)) {
		t.Fatal("stale timestamp refilled bucket")
	}
}

func TestLimiterValidation(t *testing.T) {
	if _, err := NewLimiter(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.Stage1Rate = 0
	if _, err := NewLimiter(cfg); err == nil {
		t.Fatal("zero rate accepted")
	}
	cfg = DefaultConfig()
	cfg.PreEntries = -1
	if _, err := NewLimiter(cfg); err == nil {
		t.Fatal("negative pre entries accepted")
	}
}

func TestSRAMBudget(t *testing.T) {
	l, err := NewLimiter(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := l.SRAMBytes()
	if got > 2<<20 {
		t.Fatalf("two-stage SRAM = %d bytes, must be within the paper's 2MB", got)
	}
	naive := NaiveSRAMBytes(1_000_000)
	if naive < 200e6 {
		t.Fatalf("naive SRAM = %d, paper says >200MB for 1M tenants", naive)
	}
	if naive/got < 100 {
		t.Fatalf("reduction factor = %dx, paper claims ~100x", naive/got)
	}
}

// offer sends pps packets/sec of tenant vni through l for dur, returning
// the number passed.
func offer(l *Limiter, vni uint32, pps float64, start sim.Time, dur sim.Duration) (passed, dropped int) {
	n := int(pps * dur.Seconds())
	for i := 0; i < n; i++ {
		now := start.Add(sim.Duration(float64(i) / pps * float64(sim.Second)))
		if l.Process(vni, now) == VerdictPass {
			passed++
		} else {
			dropped++
		}
	}
	return
}

func TestWithinStage1Passes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleOneIn = 0
	l, _ := NewLimiter(cfg)
	passed, dropped := offer(l, 42, 4e6, 0, sim.Second/10)
	if dropped > passed/100 {
		t.Fatalf("4Mpps (< 8Mpps stage-1) dropped %d of %d", dropped, passed+dropped)
	}
}

func TestTwoStageCombinedRate(t *testing.T) {
	// A tenant blasting 34Mpps against 8+2Mpps meters passes ~10Mpps.
	cfg := DefaultConfig()
	cfg.SampleOneIn = 0 // isolate the metering math from detection
	l, _ := NewLimiter(cfg)
	passed, _ := offer(l, 7, 34e6, 0, sim.Second/10)
	rate := float64(passed) / 0.1
	if rate < 9e6 || rate > 11.5e6 {
		t.Fatalf("passed rate = %.2fMpps, want ~10Mpps (8+2)", rate/1e6)
	}
	s := l.Stats()
	if s.Stage2Drops == 0 || s.Stage2Conform == 0 || s.Stage1Conform == 0 {
		t.Fatalf("stage accounting: %+v", s)
	}
}

func TestBypassTenantNeverLimited(t *testing.T) {
	l, _ := NewLimiter(DefaultConfig())
	if err := l.ConfigureBypass(5); err != nil {
		t.Fatal(err)
	}
	passed, dropped := offer(l, 5, 50e6, 0, sim.Second/20)
	if dropped != 0 {
		t.Fatalf("bypass tenant dropped %d of %d", dropped, passed+dropped)
	}
	if l.Stats().Bypassed == 0 {
		t.Fatal("bypass counter zero")
	}
}

func TestBypassTableFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreEntries = 2
	l, _ := NewLimiter(cfg)
	if err := l.ConfigureBypass(1); err != nil {
		t.Fatal(err)
	}
	if err := l.ConfigureBypass(2); err != nil {
		t.Fatal(err)
	}
	if err := l.ConfigureBypass(3); err == nil {
		t.Fatal("third entry accepted in 2-entry table")
	}
	// Upgrading an existing entry still works.
	if err := l.ConfigureBypass(1); err != nil {
		t.Fatal(err)
	}
}

func TestInstallHeavyHitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleOneIn = 0
	l, _ := NewLimiter(cfg)
	if err := l.InstallHeavyHitter(9, 1e6); err != nil {
		t.Fatal(err)
	}
	if !l.IsInstalled(9) {
		t.Fatal("not installed")
	}
	passed, _ := offer(l, 9, 10e6, 0, sim.Second/10)
	rate := float64(passed) / 0.1
	if rate > 1.5e6 {
		t.Fatalf("pre-metered rate = %.2fMpps, want ~1Mpps", rate/1e6)
	}
	// Reinstall adjusts the rate.
	if err := l.InstallHeavyHitter(9, 5e6); err != nil {
		t.Fatal(err)
	}
	// Bypass conflict.
	l.ConfigureBypass(11)
	if err := l.InstallHeavyHitter(11, 1e6); err == nil {
		t.Fatal("installed over bypass entry")
	}
	l.RemovePre(9)
	if l.IsInstalled(9) {
		t.Fatal("RemovePre failed")
	}
}

func TestSamplingDetectsHeavyHitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleOneIn = 10
	cfg.SampleThreshold = 20
	l, _ := NewLimiter(cfg)
	// 34Mpps blast: stage-2 drops accumulate samples and promote the
	// tenant within the window.
	offer(l, 77, 34e6, 0, sim.Second/10)
	if !l.IsInstalled(77) {
		t.Fatal("heavy hitter not detected and installed")
	}
	s := l.Stats()
	if s.HeavyInstalls != 1 || s.SamplesTaken == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInnocentTenantNotDetected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleOneIn = 10
	cfg.SampleThreshold = 20
	l, _ := NewLimiter(cfg)
	// 1Mpps tenant well within limits: no drops, no samples, no install.
	_, dropped := offer(l, 88, 1e6, 0, sim.Second/10)
	if dropped != 0 {
		t.Fatalf("innocent tenant dropped %d", dropped)
	}
	if l.IsInstalled(88) || l.Stats().SamplesTaken != 0 {
		t.Fatal("innocent tenant sampled/installed")
	}
}

func TestCollisionProtectionByPreMeter(t *testing.T) {
	// Force a dominant and an innocent tenant into the same meter entry
	// (MeterEntries=1 makes every tenant collide), plus the same color
	// entry (ColorEntries=1). With detection enabled, the dominant tenant
	// is pulled into the pre_meter, and the innocent one recovers the
	// shared stage-2 budget.
	cfg := DefaultConfig()
	cfg.ColorEntries = 1
	cfg.MeterEntries = 1
	cfg.Stage1Rate = 1e6
	cfg.Stage2Rate = 0.5e6
	cfg.SampleOneIn = 5
	cfg.SampleThreshold = 10
	l, _ := NewLimiter(cfg)

	// Phase 1 (0..100ms): dominant blasts 20Mpps; innocent sends 0.4Mpps.
	// Interleave by offering in small time slices.
	const phase = 100 * sim.Millisecond
	slices := 1000
	var innocentDropPhase1 int
	for s := 0; s < slices; s++ {
		start := sim.Time(s) * sim.Time(phase) / sim.Time(slices)
		_, _ = offer(l, 1, 20e6, start, phase/sim.Duration(slices))
		_, d := offer(l, 2, 0.4e6, start, phase/sim.Duration(slices))
		innocentDropPhase1 += d
	}
	if !l.IsInstalled(1) {
		t.Fatal("dominant tenant not installed to pre_meter")
	}
	if l.IsInstalled(2) {
		t.Fatal("innocent tenant wrongly installed")
	}

	// Phase 2: with the dominant tenant early-limited, the innocent tenant
	// keeps a clean pass rate.
	var innocentDropPhase2, innocentPassPhase2 int
	for s := 0; s < slices; s++ {
		start := sim.Time(phase).Add(sim.Duration(s) * phase / sim.Duration(slices))
		_, _ = offer(l, 1, 20e6, start, phase/sim.Duration(slices))
		p, d := offer(l, 2, 0.4e6, start, phase/sim.Duration(slices))
		innocentDropPhase2 += d
		innocentPassPhase2 += p
	}
	dropRate := float64(innocentDropPhase2) / float64(innocentDropPhase2+innocentPassPhase2)
	if dropRate > 0.15 {
		t.Fatalf("innocent tenant still dropping %.1f%% after heavy-hitter isolation", dropRate*100)
	}
}

func TestProcessDeterministic(t *testing.T) {
	run := func() Stats {
		cfg := DefaultConfig()
		l, _ := NewLimiter(cfg)
		offer(l, 3, 30e6, 0, sim.Second/20)
		offer(l, 4, 2e6, 0, sim.Second/20)
		return l.Stats()
	}
	if run() != run() {
		t.Fatal("limiter not deterministic")
	}
}

// Property: passed packets never exceed offered, and for any single tenant
// the pass rate is bounded by stage1+stage2 rates plus bursts.
func TestRateBoundProperty(t *testing.T) {
	f := func(seed uint64, ratePct uint8) bool {
		cfg := DefaultConfig()
		cfg.SampleOneIn = 0
		cfg.Stage1Rate = 1e6
		cfg.Stage2Rate = 0.25e6
		cfg.Burst = 100
		l, err := NewLimiter(cfg)
		if err != nil {
			return false
		}
		offeredRate := 0.1e6 + float64(ratePct)*0.05e6 // 0.1..12.85 Mpps
		vni := uint32(seed)
		passed, dropped := offer(l, vni, offeredRate, 0, sim.Second/10)
		if passed+dropped == 0 {
			return true
		}
		limit := (cfg.Stage1Rate+cfg.Stage2Rate)*0.1 + 2*cfg.Burst
		return float64(passed) <= limit+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcess(b *testing.B) {
	l, _ := NewLimiter(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Process(uint32(i%1000), sim.Time(i))
	}
}
