package service

import (
	"testing"

	"albatross/internal/cachesim"
	"albatross/internal/packet"
	"albatross/internal/sim"
)

func testFlows(n int, seed uint64) []Flow {
	r := sim.NewRand(seed)
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{
			Tuple: packet.FiveTuple{
				Src:   packet.IPv4FromUint32(0x0a000000 | r.Uint32()&0x00ffffff),
				Dst:   packet.IPv4FromUint32(0x30000000 | r.Uint32()&0x000fffff),
				Proto: packet.IPProtocolTCP,
				SPort: uint16(1024 + r.Intn(60000)),
				DPort: 443,
			},
			VNI: r.Uint32() % 100000,
		}
	}
	return flows
}

func newService(t testing.TB, typ Type, flows []Flow) *Service {
	t.Helper()
	s, err := New(Config{
		Type:  typ,
		Cache: cachesim.New(cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Populate(flows)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Type: Type(99), Cache: cachesim.New(cachesim.DefaultL3())}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := New(Config{Type: VPCVPC}); err == nil {
		t.Fatal("nil cache accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{
		VPCVPC: "VPC-VPC", VPCInternet: "VPC-Internet",
		VPCIDC: "VPC-IDC", VPCCloudService: "VPC-CloudService",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d = %q, want %q", typ, typ.String(), want)
		}
	}
	if Type(42).String() != "service(42)" {
		t.Error("unknown type string")
	}
	if len(All) != 4 {
		t.Error("All should list 4 services")
	}
}

func TestProcessKnownFlow(t *testing.T) {
	flows := testFlows(100, 1)
	s := newService(t, VPCVPC, flows)
	res := s.Process(flows[0].Tuple, flows[0].VNI)
	if res.Drop {
		t.Fatal("known flow dropped")
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.Hits+res.Misses == 0 {
		t.Fatal("no memory accesses recorded")
	}
	// 3 tables x 2 lines + 1 LPM x 3 lines = 9 accesses.
	if res.Hits+res.Misses != 9 {
		t.Fatalf("accesses = %d, want 9 for VPC-VPC", res.Hits+res.Misses)
	}
}

func TestProcessUnknownFlowDrops(t *testing.T) {
	s := newService(t, VPCVPC, testFlows(10, 1))
	unknown := packet.FiveTuple{Src: packet.IPv4Addr{1, 2, 3, 4}, Dst: packet.IPv4Addr{5, 6, 7, 8}, Proto: packet.IPProtocolUDP, SPort: 9, DPort: 9}
	if res := s.Process(unknown, 0); !res.Drop {
		t.Fatal("unknown flow passed")
	}
}

func TestACLDeniedFlowDrops(t *testing.T) {
	flows := testFlows(10, 1)
	flows[3].Denied = true
	s := newService(t, VPCInternet, flows)
	if res := s.Process(flows[3].Tuple, flows[3].VNI); !res.Drop {
		t.Fatal("denied flow passed")
	}
	if res := s.Process(flows[4].Tuple, flows[4].VNI); res.Drop {
		t.Fatal("allowed flow dropped")
	}
}

func TestServiceChains(t *testing.T) {
	for _, typ := range All {
		s := newService(t, typ, testFlows(10, 2))
		if s.Type() != typ {
			t.Fatalf("type = %v", s.Type())
		}
		if s.NumTables() < 3 {
			t.Fatalf("%v has %d tables", typ, s.NumTables())
		}
		if s.LPMLookups() < 1 {
			t.Fatalf("%v has %d LPM lookups", typ, s.LPMLookups())
		}
	}
	inet := newService(t, VPCInternet, testFlows(10, 2))
	vpc := newService(t, VPCVPC, testFlows(10, 2))
	if inet.NumTables() <= vpc.NumTables() {
		t.Fatal("VPC-Internet must chain more tables than VPC-VPC")
	}
	if !inet.Stateful() || vpc.Stateful() {
		t.Fatal("statefulness flags wrong")
	}
}

func TestCostOrderingAcrossServices(t *testing.T) {
	// With a shared cold cache and identical flows, VPC-Internet must be
	// the most expensive service (paper Tab. 3: 81.6 vs ~120+ Mpps).
	flows := testFlows(50000, 3)
	cost := map[Type]float64{}
	for _, typ := range All {
		s := newService(t, typ, flows)
		var total sim.Duration
		const probes = 20000
		r := sim.NewRand(7)
		for i := 0; i < probes; i++ {
			f := flows[r.Intn(len(flows))]
			total += s.Process(f.Tuple, f.VNI).Cost
		}
		cost[typ] = float64(total) / probes
	}
	for _, typ := range []Type{VPCVPC, VPCIDC, VPCCloudService} {
		if cost[VPCInternet] <= cost[typ] {
			t.Fatalf("VPC-Internet (%.0fns) not slower than %v (%.0fns)",
				cost[VPCInternet], typ, cost[typ])
		}
	}
	if cost[VPCVPC] >= cost[VPCIDC] {
		t.Fatalf("VPC-VPC (%.0fns) should be cheaper than VPC-IDC (%.0fns)",
			cost[VPCVPC], cost[VPCIDC])
	}
}

func TestMemoryMultIncreasesCost(t *testing.T) {
	flows := testFlows(20000, 4)
	mk := func(memMult float64) float64 {
		s, err := New(Config{
			Type:       VPCVPC,
			Cache:      cachesim.New(cachesim.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64}),
			MemoryMult: memMult,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Populate(flows)
		var total sim.Duration
		r := sim.NewRand(5)
		for i := 0; i < 10000; i++ {
			f := flows[r.Intn(len(flows))]
			total += s.Process(f.Tuple, f.VNI).Cost
		}
		return float64(total) / 10000
	}
	base := mk(1.0)
	cross := mk(1.3)
	if cross <= base {
		t.Fatalf("cross-NUMA cost %.0f <= intra %.0f", cross, base)
	}
	// Memory-bound service: a 30% memory penalty should show up as a
	// 10-30% total increase (diluted by the compute portion).
	ratio := cross / base
	if ratio < 1.05 || ratio > 1.35 {
		t.Fatalf("cross/intra ratio = %.3f, outside plausible range", ratio)
	}
}

func TestFasterDRAMReducesCost(t *testing.T) {
	flows := testFlows(20000, 6)
	mk := func(mhz float64) float64 {
		s, err := New(Config{
			Type:    VPCInternet,
			Cache:   cachesim.New(cachesim.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64}),
			Latency: cachesim.DefaultLatency().WithDRAMFrequency(mhz),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Populate(flows)
		var total sim.Duration
		r := sim.NewRand(5)
		for i := 0; i < 10000; i++ {
			f := flows[r.Intn(len(flows))]
			total += s.Process(f.Tuple, f.VNI).Cost
		}
		return float64(total) / 10000
	}
	slow := mk(4800)
	fast := mk(5600)
	improvement := (slow - fast) / slow
	// Paper §4.2: 4800->5600MHz gave ~8% end-to-end improvement.
	if improvement < 0.03 || improvement > 0.15 {
		t.Fatalf("memory frequency improvement = %.1f%%, want ~8%%", improvement*100)
	}
}

func TestCacheHitRateInPaperRange(t *testing.T) {
	// The Fig. 5 reproduction at test scale: a scaled cache (4MB) with a
	// proportionally scaled flow count must settle in a thrashing regime,
	// well below 80% and above 10%.
	flows := testFlows(50000, 8)
	cache := cachesim.New(cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64})
	s, err := New(Config{Type: VPCInternet, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	s.Populate(flows)
	r := sim.NewRand(9)
	for i := 0; i < 100000; i++ {
		f := flows[r.Intn(len(flows))]
		s.Process(f.Tuple, f.VNI)
	}
	cache.ResetStats()
	for i := 0; i < 100000; i++ {
		f := flows[r.Intn(len(flows))]
		s.Process(f.Tuple, f.VNI)
	}
	hr := cache.HitRate()
	if hr < 0.10 || hr > 0.80 {
		t.Fatalf("L3 hit rate = %.2f, want thrashing regime", hr)
	}
}

func TestTableMemoryAndRoutes(t *testing.T) {
	flows := testFlows(1000, 10)
	s := newService(t, VPCVPC, flows)
	if s.TableMemoryBytes() < int64(1000*3*100) {
		t.Fatalf("table memory = %d", s.TableMemoryBytes())
	}
	if s.RouteCount() == 0 {
		t.Fatal("no routes installed")
	}
	if s.RouteCount() > 1000 {
		t.Fatal("route count exceeds flow count (aggregation expected)")
	}
}

func TestProcessDeterministic(t *testing.T) {
	run := func() sim.Duration {
		flows := testFlows(1000, 11)
		s := newService(t, VPCIDC, flows)
		var total sim.Duration
		for i := 0; i < 5000; i++ {
			f := flows[i%len(flows)]
			total += s.Process(f.Tuple, f.VNI).Cost
		}
		return total
	}
	if run() != run() {
		t.Fatal("service cost not deterministic")
	}
}

func BenchmarkProcessVPCInternet(b *testing.B) {
	flows := testFlows(100000, 12)
	s, err := New(Config{Type: VPCInternet, Cache: cachesim.New(cachesim.DefaultL3())})
	if err != nil {
		b.Fatal(err)
	}
	s.Populate(flows)
	r := sim.NewRand(13)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = r.Intn(len(flows))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := flows[idx[i&4095]]
		s.Process(f.Tuple, f.VNI)
	}
}
