package service

import (
	"fmt"

	"albatross/internal/flowtable"
	"albatross/internal/packet"
	"albatross/internal/sim"
)

// SNAT implements the source NAT engine behind the VPC-Internet service:
// private tenant flows are rewritten to (public IP, port) bindings drawn
// from an EIP pool, with per-flow sessions tracked in a session table.
// This is the canonical "stateful NF" of the paper's §7 discussion —
// session creation/teardown is write-light, per-packet counters are
// write-heavy.
type SNAT struct {
	publicIPs []packet.IPv4Addr
	portLo    uint16
	portHi    uint16

	sessions *flowtable.SessionTable
	// bindings maps (publicIP index, port) -> owning flow, for conflict-
	// free allocation and reverse lookups.
	bindings map[binding]packet.FiveTuple
	// cursor rotates allocations across the pool.
	cursor uint32

	// Allocs/AllocFails/Releases are lifetime counters.
	Allocs     uint64
	AllocFails uint64
	Releases   uint64
}

type binding struct {
	ipIdx uint16
	port  uint16
}

// NewSNAT creates an engine over the given public IP pool and port range.
// maxSessions bounds the session table (0 = unbounded); idle sets the
// session timeout.
func NewSNAT(publicIPs []packet.IPv4Addr, portLo, portHi uint16, maxSessions int, idle sim.Duration) (*SNAT, error) {
	if len(publicIPs) == 0 {
		return nil, fmt.Errorf("service: snat needs at least one public IP")
	}
	if portLo == 0 || portLo > portHi {
		return nil, fmt.Errorf("service: snat port range [%d,%d] invalid", portLo, portHi)
	}
	return &SNAT{
		publicIPs: publicIPs,
		portLo:    portLo,
		portHi:    portHi,
		sessions:  flowtable.NewSessionTable(maxSessions, idle),
		bindings:  make(map[binding]packet.FiveTuple),
	}, nil
}

// Capacity returns the total number of allocatable bindings.
func (s *SNAT) Capacity() int {
	return len(s.publicIPs) * int(s.portHi-s.portLo+1)
}

// ActiveSessions returns the live session count.
func (s *SNAT) ActiveSessions() int { return s.sessions.Len() }

// Translate returns the (public IP, port) binding for an outbound flow,
// allocating a session on first use. ok=false means the pool is exhausted.
func (s *SNAT) Translate(flow packet.FiveTuple, now sim.Time) (packet.IPv4Addr, uint16, bool) {
	if sess := s.sessions.Lookup(flow, now); sess != nil {
		return sess.NATAddr, sess.NATPort, true
	}
	// Allocate: round-robin scan from the cursor for a free binding.
	span := uint32(s.Capacity())
	ports := uint32(s.portHi - s.portLo + 1)
	for probe := uint32(0); probe < span; probe++ {
		idx := (s.cursor + probe) % span
		b := binding{ipIdx: uint16(idx / ports), port: s.portLo + uint16(idx%ports)}
		if _, used := s.bindings[b]; used {
			continue
		}
		s.cursor = idx + 1
		s.bindings[b] = flow
		sess := s.sessions.Create(flow, now)
		sess.NATAddr = s.publicIPs[b.ipIdx]
		sess.NATPort = b.port
		sess.State = flowtable.StateEstablished
		s.Allocs++
		return sess.NATAddr, sess.NATPort, true
	}
	s.AllocFails++
	return packet.IPv4Addr{}, 0, false
}

// ReverseLookup resolves an inbound (public IP, port) back to the tenant
// flow, for return traffic.
func (s *SNAT) ReverseLookup(pub packet.IPv4Addr, port uint16) (packet.FiveTuple, bool) {
	for i, ip := range s.publicIPs {
		if ip == pub {
			f, ok := s.bindings[binding{ipIdx: uint16(i), port: port}]
			return f, ok
		}
	}
	return packet.FiveTuple{}, false
}

// Release tears down a flow's session and frees its binding. It uses a
// non-expiring lookup so idle sessions can still be reclaimed explicitly.
func (s *SNAT) Release(flow packet.FiveTuple) bool {
	sess := s.sessions.Peek(flow)
	if sess == nil {
		return false
	}
	for i, ip := range s.publicIPs {
		if ip == sess.NATAddr {
			delete(s.bindings, binding{ipIdx: uint16(i), port: sess.NATPort})
			break
		}
	}
	sess.State = flowtable.StateClosing
	s.sessions.Delete(flow)
	s.Releases++
	return true
}

// ExpireIdle sweeps idle sessions and frees their bindings. Returns the
// number reclaimed.
func (s *SNAT) ExpireIdle(now sim.Time) int {
	n := 0
	for _, f := range s.sessions.IdleFlows(now) {
		if s.Release(f) {
			n++
		}
	}
	return n
}

// RewriteOutbound applies the translation to a parsed packet's inner
// header fields, returning the rewritten source. It is the functional
// dataplane step (the cost model charges the snat_sess table separately).
func (s *SNAT) RewriteOutbound(flow packet.FiveTuple, now sim.Time) (packet.FiveTuple, bool) {
	pub, port, ok := s.Translate(flow, now)
	if !ok {
		return flow, false
	}
	out := flow
	out.Src = pub
	out.SPort = port
	return out, true
}
