package service

import (
	"testing"
	"testing/quick"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

func snatFlow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src:   packet.IPv4FromUint32(0xc0a80000 + uint32(i)),
		Dst:   packet.IPv4Addr{8, 8, 8, 8},
		Proto: packet.IPProtocolTCP,
		SPort: uint16(10000 + i%50000),
		DPort: 443,
	}
}

func pool(n int) []packet.IPv4Addr {
	out := make([]packet.IPv4Addr, n)
	for i := range out {
		out[i] = packet.IPv4Addr{203, 0, 113, byte(i + 1)}
	}
	return out
}

func TestSNATValidation(t *testing.T) {
	if _, err := NewSNAT(nil, 1024, 2048, 0, 0); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewSNAT(pool(1), 0, 2048, 0, 0); err == nil {
		t.Fatal("port 0 accepted")
	}
	if _, err := NewSNAT(pool(1), 2048, 1024, 0, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSNATBindingStable(t *testing.T) {
	s, err := NewSNAT(pool(2), 1024, 1033, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 20 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	f := snatFlow(1)
	ip1, p1, ok := s.Translate(f, 0)
	if !ok {
		t.Fatal("first translate failed")
	}
	// Same flow, same binding.
	for i := 0; i < 5; i++ {
		ip2, p2, ok := s.Translate(f, sim.Time(i))
		if !ok || ip2 != ip1 || p2 != p1 {
			t.Fatalf("binding moved: %v:%d -> %v:%d", ip1, p1, ip2, p2)
		}
	}
	if s.Allocs != 1 {
		t.Fatalf("allocs = %d", s.Allocs)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d", s.ActiveSessions())
	}
}

func TestSNATDistinctBindings(t *testing.T) {
	s, _ := NewSNAT(pool(2), 1024, 1123, 0, 0) // capacity 200
	seen := map[[2]any]bool{}
	for i := 0; i < 200; i++ {
		ip, port, ok := s.Translate(snatFlow(i), 0)
		if !ok {
			t.Fatalf("translate %d failed", i)
		}
		key := [2]any{ip, port}
		if seen[key] {
			t.Fatalf("binding %v:%d reused", ip, port)
		}
		seen[key] = true
	}
	// Pool exhausted.
	if _, _, ok := s.Translate(snatFlow(999), 0); ok {
		t.Fatal("translate beyond capacity")
	}
	if s.AllocFails != 1 {
		t.Fatalf("alloc fails = %d", s.AllocFails)
	}
}

func TestSNATReverseLookup(t *testing.T) {
	s, _ := NewSNAT(pool(2), 1024, 1033, 0, 0)
	f := snatFlow(7)
	ip, port, _ := s.Translate(f, 0)
	back, ok := s.ReverseLookup(ip, port)
	if !ok || back != f {
		t.Fatalf("reverse = %v %v", back, ok)
	}
	if _, ok := s.ReverseLookup(packet.IPv4Addr{9, 9, 9, 9}, port); ok {
		t.Fatal("reverse of unknown IP")
	}
	if _, ok := s.ReverseLookup(ip, 9999); ok {
		t.Fatal("reverse of unused port")
	}
}

func TestSNATReleaseRecycles(t *testing.T) {
	s, _ := NewSNAT(pool(1), 1024, 1025, 0, 0) // capacity 2
	f1, f2, f3 := snatFlow(1), snatFlow(2), snatFlow(3)
	s.Translate(f1, 0)
	s.Translate(f2, 0)
	if _, _, ok := s.Translate(f3, 0); ok {
		t.Fatal("over capacity")
	}
	if !s.Release(f1) {
		t.Fatal("release failed")
	}
	if s.Release(f1) {
		t.Fatal("double release")
	}
	if _, _, ok := s.Translate(f3, 2); !ok {
		t.Fatal("binding not recycled")
	}
	if s.Releases != 1 {
		t.Fatalf("releases = %d", s.Releases)
	}
}

func TestSNATIdleExpiry(t *testing.T) {
	s, _ := NewSNAT(pool(1), 1024, 1033, 0, 100*sim.Microsecond)
	for i := 0; i < 5; i++ {
		s.Translate(snatFlow(i), 0)
	}
	// Keep flow 0 fresh.
	s.Translate(snatFlow(0), sim.Time(90*sim.Microsecond))
	n := s.ExpireIdle(sim.Time(150 * sim.Microsecond))
	if n != 4 {
		t.Fatalf("expired %d, want 4", n)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d", s.ActiveSessions())
	}
	// Freed bindings are allocatable again.
	for i := 10; i < 14; i++ {
		if _, _, ok := s.Translate(snatFlow(i), sim.Time(200*sim.Microsecond)); !ok {
			t.Fatalf("post-expiry alloc %d failed", i)
		}
	}
}

func TestSNATRewriteOutbound(t *testing.T) {
	s, _ := NewSNAT(pool(1), 2000, 2010, 0, 0)
	f := snatFlow(3)
	out, ok := s.RewriteOutbound(f, 0)
	if !ok {
		t.Fatal("rewrite failed")
	}
	if out.Src != (packet.IPv4Addr{203, 0, 113, 1}) {
		t.Fatalf("src = %v", out.Src)
	}
	if out.SPort < 2000 || out.SPort > 2010 {
		t.Fatalf("sport = %d", out.SPort)
	}
	if out.Dst != f.Dst || out.DPort != f.DPort || out.Proto != f.Proto {
		t.Fatal("non-source fields mutated")
	}
}

// Property: bindings are never shared between concurrently active flows,
// and reverse lookup is consistent, under any interleaving of translate
// and release operations.
func TestSNATBindingUniquenessProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := NewSNAT(pool(2), 1024, 1039, 0, 0) // capacity 32
		if err != nil {
			return false
		}
		type bind struct {
			ip   packet.IPv4Addr
			port uint16
		}
		active := map[bind]packet.FiveTuple{}
		flowBind := map[packet.FiveTuple]bind{}
		now := sim.Time(0)
		for _, op := range ops {
			now++
			flow := snatFlow(int(op) % 40)
			if op%3 == 0 {
				if b, ok := flowBind[flow]; ok {
					if !s.Release(flow) {
						return false
					}
					delete(active, b)
					delete(flowBind, flow)
				}
				continue
			}
			ip, port, ok := s.Translate(flow, now)
			if !ok {
				continue // exhausted is legal
			}
			b := bind{ip, port}
			if owner, used := active[b]; used && owner != flow {
				return false // shared binding!
			}
			if prev, had := flowBind[flow]; had && prev != b {
				return false // binding moved under an active session
			}
			active[b] = flow
			flowBind[flow] = b
			// Reverse lookup agrees.
			back, ok := s.ReverseLookup(ip, port)
			if !ok || back != flow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSNATTranslateHit(b *testing.B) {
	s, _ := NewSNAT(pool(8), 1024, 65000, 0, 0)
	flows := make([]packet.FiveTuple, 1024)
	for i := range flows {
		flows[i] = snatFlow(i)
		s.Translate(flows[i], 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Translate(flows[i&1023], sim.Time(i))
	}
}
