package service

import (
	"testing"

	"albatross/internal/cachesim"
	"albatross/internal/packet"
)

func tup(src, dst uint32, proto packet.IPProtocol, dport uint16) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.IPv4FromUint32(src), Dst: packet.IPv4FromUint32(dst),
		Proto: proto, SPort: 40000, DPort: dport,
	}
}

func TestACLFirstMatchWins(t *testing.T) {
	a := NewACL(ACLPermit)
	// Rule 0: deny everything from 10.0.0.0/8 to port 22.
	if err := a.Append(ACLRule{SrcPrefix: 0x0a000000, SrcLen: 8,
		Proto: packet.IPProtocolTCP, DPortLo: 22, DPortHi: 22, Action: ACLDeny}); err != nil {
		t.Fatal(err)
	}
	// Rule 1: permit 10.1.0.0/16 broadly (never reached for port 22).
	if err := a.Append(ACLRule{SrcPrefix: 0x0a010000, SrcLen: 16, Action: ACLPermit}); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
	if v := a.Evaluate(tup(0x0a010101, 0x08080808, packet.IPProtocolTCP, 22)); v != ACLDeny {
		t.Fatalf("ssh from 10/8 = %v, want deny (first match)", v)
	}
	if v := a.Evaluate(tup(0x0a010101, 0x08080808, packet.IPProtocolTCP, 443)); v != ACLPermit {
		t.Fatalf("https = %v", v)
	}
	if a.Hits[0] != 1 || a.Hits[1] != 1 {
		t.Fatalf("hits = %v", a.Hits)
	}
}

func TestACLDefaultAction(t *testing.T) {
	deny := NewACL(ACLDeny)
	if v := deny.Evaluate(tup(1, 2, packet.IPProtocolUDP, 53)); v != ACLDeny {
		t.Fatal("default deny broken")
	}
	if deny.DefaultHits != 1 {
		t.Fatalf("default hits = %d", deny.DefaultHits)
	}
}

func TestACLFieldMatching(t *testing.T) {
	a := NewACL(ACLPermit)
	a.Append(ACLRule{
		SrcPrefix: 0x0a000000, SrcLen: 8,
		DstPrefix: 0xc0a80000, DstLen: 16,
		Proto: packet.IPProtocolUDP, DPortLo: 1000, DPortHi: 2000,
		Action: ACLDeny,
	})
	match := tup(0x0a123456, 0xc0a80101, packet.IPProtocolUDP, 1500)
	if a.Evaluate(match) != ACLDeny {
		t.Fatal("full match failed")
	}
	// Each field mismatch falls through to permit.
	cases := []packet.FiveTuple{
		tup(0x0b000001, 0xc0a80101, packet.IPProtocolUDP, 1500), // wrong src
		tup(0x0a123456, 0xc0a90101, packet.IPProtocolUDP, 1500), // wrong dst
		tup(0x0a123456, 0xc0a80101, packet.IPProtocolTCP, 1500), // wrong proto
		tup(0x0a123456, 0xc0a80101, packet.IPProtocolUDP, 999),  // below range
		tup(0x0a123456, 0xc0a80101, packet.IPProtocolUDP, 2001), // above range
	}
	for i, f := range cases {
		if a.Evaluate(f) != ACLPermit {
			t.Fatalf("case %d should fall through", i)
		}
	}
}

func TestACLValidation(t *testing.T) {
	a := NewACL(ACLPermit)
	if err := a.Append(ACLRule{SrcLen: 33}); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if err := a.Append(ACLRule{DPortLo: 100, DPortHi: 50}); err == nil {
		t.Fatal("inverted port range accepted")
	}
	r := ACLRule{SrcPrefix: 0x0a000000, SrcLen: 8, Action: ACLDeny}
	if r.String() == "" || ACLPermit.String() != "permit" || ACLDeny.String() != "deny" {
		t.Fatal("strings")
	}
}

func TestServiceWithACL(t *testing.T) {
	flows := testFlows(100, 31)
	s := newService(t, VPCInternet, flows)
	acl := NewACL(ACLPermit)
	// Deny everything to the first flow's destination /32.
	acl.Append(ACLRule{
		DstPrefix: flows[0].Tuple.Dst.Uint32(), DstLen: 32, Action: ACLDeny,
	})
	s.SetACL(acl)
	if res := s.Process(flows[0].Tuple, flows[0].VNI); !res.Drop {
		t.Fatal("ACL-denied flow passed")
	}
	// Other flows unaffected (unless they share the same dst).
	passed := 0
	for _, f := range flows[1:] {
		if f.Tuple.Dst == flows[0].Tuple.Dst {
			continue
		}
		if res := s.Process(f.Tuple, f.VNI); !res.Drop {
			passed++
		}
	}
	if passed == 0 {
		t.Fatal("ACL denied everything")
	}
	s.SetACL(nil)
	if res := s.Process(flows[0].Tuple, flows[0].VNI); res.Drop {
		t.Fatal("detached ACL still dropping")
	}
	_ = cachesim.DefaultL3
}
