package service

import (
	"fmt"

	"albatross/internal/lpm"
	"albatross/internal/packet"
)

// ACL is an ordered first-match rule list, the security-group style filter
// the VPC-Internet service consults per packet. Rules match on source and
// destination prefixes, protocol, and destination port range; the first
// matching rule's action wins, with a configurable default.
type ACL struct {
	rules         []ACLRule
	defaultAction ACLAction

	// Hits counts per-rule matches (index-aligned with rules).
	Hits []uint64
	// DefaultHits counts packets that fell through to the default.
	DefaultHits uint64
}

// ACLAction is a rule verdict.
type ACLAction uint8

// Actions.
const (
	ACLPermit ACLAction = iota
	ACLDeny
)

func (a ACLAction) String() string {
	if a == ACLDeny {
		return "deny"
	}
	return "permit"
}

// ACLRule is one row.
type ACLRule struct {
	// SrcPrefix/SrcLen bound the source (Len 0 = any).
	SrcPrefix uint32
	SrcLen    int
	// DstPrefix/DstLen bound the destination.
	DstPrefix uint32
	DstLen    int
	// Proto 0 matches any protocol.
	Proto packet.IPProtocol
	// DPortLo..DPortHi bound the destination port (0,0 = any).
	DPortLo, DPortHi uint16
	Action           ACLAction
}

// Validate checks a rule's fields.
func (r ACLRule) Validate() error {
	if r.SrcLen < 0 || r.SrcLen > 32 || r.DstLen < 0 || r.DstLen > 32 {
		return fmt.Errorf("service: acl prefix length out of range")
	}
	if r.DPortHi != 0 && r.DPortLo > r.DPortHi {
		return fmt.Errorf("service: acl port range inverted (%d > %d)", r.DPortLo, r.DPortHi)
	}
	return nil
}

func (r ACLRule) String() string {
	return fmt.Sprintf("%v src=%s dst=%s proto=%d dport=%d-%d",
		r.Action,
		lpm.PrefixString(lpm.Canonical(r.SrcPrefix, r.SrcLen), r.SrcLen),
		lpm.PrefixString(lpm.Canonical(r.DstPrefix, r.DstLen), r.DstLen),
		r.Proto, r.DPortLo, r.DPortHi)
}

// NewACL creates an ACL with the given default action.
func NewACL(defaultAction ACLAction) *ACL {
	return &ACL{defaultAction: defaultAction}
}

// Append adds a rule at the end (lowest priority so far).
func (a *ACL) Append(r ACLRule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	a.rules = append(a.rules, r)
	a.Hits = append(a.Hits, 0)
	return nil
}

// Len returns the rule count.
func (a *ACL) Len() int { return len(a.rules) }

func (r *ACLRule) matches(f packet.FiveTuple) bool {
	if r.SrcLen > 0 && f.Src.Uint32()&lpm.Mask(r.SrcLen) != lpm.Canonical(r.SrcPrefix, r.SrcLen) {
		return false
	}
	if r.DstLen > 0 && f.Dst.Uint32()&lpm.Mask(r.DstLen) != lpm.Canonical(r.DstPrefix, r.DstLen) {
		return false
	}
	if r.Proto != 0 && r.Proto != f.Proto {
		return false
	}
	if r.DPortLo != 0 || r.DPortHi != 0 {
		if f.DPort < r.DPortLo || f.DPort > r.DPortHi {
			return false
		}
	}
	return true
}

// Evaluate returns the verdict for a flow (first match wins).
func (a *ACL) Evaluate(f packet.FiveTuple) ACLAction {
	for i := range a.rules {
		if a.rules[i].matches(f) {
			a.Hits[i]++
			return a.rules[i].Action
		}
	}
	a.DefaultHits++
	return a.defaultAction
}

// SetACL attaches an ACL engine to the service: its verdict overrides the
// Populate-time denied set for packets the engine denies. Pass nil to
// detach.
func (s *Service) SetACL(a *ACL) { s.acl = a }
