// Package service implements the CPU-side gateway dataplane: the four
// representative cloud gateway services of the paper's Tab. 2 (VPC-VPC,
// VPC-Internet, VPC-IDC, VPC-CloudService), each a chain of real table
// lookups over the flowtable/lpm substrates.
//
// Per-packet cost is *derived*, not asserted: every lookup touches its
// entry's synthetic memory addresses through the shared L3 cache model, and
// the resulting hit/miss counts are priced with DRAM/L3 latencies. This is
// the mechanism behind the paper's Fig. 4/5: with 500K concurrent flows and
// multi-hundred-byte entries the working set dwarfs the cache, the L3 hit
// rate settles around 30-45%, and PLB (packet spray) performs within 1% of
// RSS (flow affinity) because neither fits the cache anyway.
package service

import (
	"albatross/internal/errs"
	"fmt"

	"albatross/internal/cachesim"
	"albatross/internal/flowtable"
	"albatross/internal/lpm"
	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Type enumerates the gateway services of Tab. 2.
type Type int

// Gateway services.
const (
	VPCVPC Type = iota
	VPCInternet
	VPCIDC
	VPCCloudService
)

// All lists every service type.
var All = []Type{VPCVPC, VPCInternet, VPCIDC, VPCCloudService}

func (t Type) String() string {
	switch t {
	case VPCVPC:
		return "VPC-VPC"
	case VPCInternet:
		return "VPC-Internet"
	case VPCIDC:
		return "VPC-IDC"
	case VPCCloudService:
		return "VPC-CloudService"
	default:
		return fmt.Sprintf("service(%d)", int(t))
	}
}

// profile describes a service's processing chain.
type profile struct {
	// tables are the exact-match lookups the service performs per packet,
	// with per-entry footprints (paper §4.2: entries are long, often
	// hundreds of bytes).
	tables []tableSpec
	// lpmLookups is the number of LPM route lookups per packet.
	lpmLookups int
	// baseNS is the instruction-path cost excluding memory stalls.
	baseNS float64
	// stateful marks services that maintain per-flow sessions (SNAT).
	stateful bool
}

type tableSpec struct {
	name      string
	entrySize int
}

// profiles calibrates the four services. Lookup chains follow the paper's
// narrative: VPC-Internet has "significantly longer processing code and
// more lookup tables than other gateway services".
var profiles = map[Type]profile{
	VPCVPC: {
		tables: []tableSpec{
			{"vmnc_src", 128},   // VM-NC mapping of the source VM
			{"vmnc_dst", 128},   // VM-NC mapping of the destination VM
			{"vpc_policy", 128}, // VPC peering/policy entry
		},
		lpmLookups: 1,
		baseNS:     220,
	},
	VPCInternet: {
		tables: []tableSpec{
			{"vmnc_src", 128},
			{"eip_map", 128},   // elastic IP mapping
			{"snat_sess", 128}, // SNAT session
			{"acl", 128},       // security ACL
		},
		lpmLookups: 2, // VXLAN route + Internet route
		baseNS:     285,
		stateful:   true,
	},
	VPCIDC: {
		tables: []tableSpec{
			{"vmnc_src", 128},
			{"tunnel", 128}, // hybrid-cloud tunnel entry
			{"idc_policy", 128},
		},
		lpmLookups: 1,
		baseNS:     270,
	},
	VPCCloudService: {
		tables: []tableSpec{
			{"vmnc_src", 128},
			{"svc_endpoint", 128}, // cloud service endpoint mapping
			{"svc_policy", 128},
		},
		lpmLookups: 1,
		baseNS:     235,
	},
}

// Flow describes one tenant flow the service must know about.
type Flow struct {
	Tuple packet.FiveTuple
	VNI   uint32
	// Denied marks flows the ACL drops (VPC-Internet only).
	Denied bool
}

// Result is the outcome of processing one packet.
type Result struct {
	// Cost is the CPU service time for this packet.
	Cost sim.Duration
	// Drop is set when the service discards the packet (ACL/rate rules):
	// the pod should return it to the NIC with the PLB drop flag.
	Drop bool
	// Hits/Misses are the packet's L3 cache accesses.
	Hits, Misses int
}

// Config parameterizes a service instance.
type Config struct {
	Type Type
	// Cache is the shared L3 model. Required.
	Cache *cachesim.Cache
	// Latency prices cache hits/misses. Zero value uses DefaultLatency.
	Latency cachesim.MemLatency
	// MemoryMult scales memory stall time (cross-NUMA penalty, memory
	// frequency). 0 means 1.0.
	MemoryMult float64
	// ComputeMult scales instruction-path time. 0 means 1.0.
	ComputeMult float64
	// Addrs allocates synthetic table address bases. nil uses the
	// process-global space; deterministic experiments should pass a
	// per-context space so table addresses don't depend on what else the
	// process has created.
	Addrs *flowtable.AddrSpace
}

// Service is one gateway service instance (the dataplane of one GW pod
// role).
type Service struct {
	cfg     Config
	prof    profile
	tables  []*flowtable.Table
	routes  *lpm.Table
	lpmBase uint64

	// denied caches the ACL verdicts installed by Populate.
	denied map[packet.FiveTuple]bool
	// acl, when set via SetACL, adds rule-based filtering on top.
	acl *ACL

	// warmSink absorbs WarmProbes' reads so they are not elided.
	warmSink uint64
}

// New creates a service instance.
func New(cfg Config) (*Service, error) {
	prof, ok := profiles[cfg.Type]
	if !ok {
		return nil, fmt.Errorf("service: unknown type %v: %w", cfg.Type, errs.BadConfig)
	}
	if cfg.Cache == nil {
		return nil, fmt.Errorf("service: cache model required: %w", errs.BadConfig)
	}
	if cfg.Latency == (cachesim.MemLatency{}) {
		cfg.Latency = cachesim.DefaultLatency()
	}
	if cfg.MemoryMult == 0 {
		cfg.MemoryMult = 1
	}
	if cfg.ComputeMult == 0 {
		cfg.ComputeMult = 1
	}
	s := &Service{
		cfg:    cfg,
		prof:   prof,
		routes: lpm.New(),
		denied: make(map[packet.FiveTuple]bool),
	}
	for _, ts := range prof.tables {
		s.tables = append(s.tables, flowtable.NewTableIn(cfg.Addrs, ts.name, ts.entrySize))
	}
	// A dedicated synthetic address region for LPM trie nodes.
	s.lpmBase = uint64(0x7f) << 48
	return s, nil
}

// Type returns the service type.
func (s *Service) Type() Type { return s.cfg.Type }

// Stateful reports whether the service maintains per-flow sessions.
func (s *Service) Stateful() bool { return s.prof.stateful }

// NumTables returns the number of exact-match tables in the chain.
func (s *Service) NumTables() int { return len(s.tables) }

// LPMLookups returns the LPM lookups per packet.
func (s *Service) LPMLookups() int { return s.prof.lpmLookups }

// Populate installs table state for the given flows: one entry per flow in
// each chained table, plus /24 routes covering flow destinations.
func (s *Service) Populate(flows []Flow) {
	for i, f := range flows {
		for _, tb := range s.tables {
			tb.Insert(f.Tuple, uint64(i))
		}
		if f.Denied {
			s.denied[f.Tuple] = true
		}
		// Destination subnet route (idempotent across flows sharing /24s).
		prefix := lpm.Canonical(f.Tuple.Dst.Uint32(), 24)
		_ = s.routes.Insert(prefix, 24, uint32(i%1<<20))
	}
}

// TableMemoryBytes returns the modelled footprint of all exact-match
// tables.
func (s *Service) TableMemoryBytes() int64 {
	var total int64
	for _, tb := range s.tables {
		total += tb.MemoryBytes()
	}
	return total
}

// RouteCount returns the number of installed LPM routes.
func (s *Service) RouteCount() int { return s.routes.Len() }

// WarmProbes reads the exact-match probe-chain heads for fh without looking
// anything up: independent loads that start the host cache misses early. No
// model state is touched.
func (s *Service) WarmProbes(fh uint32) {
	var sink uint64
	for _, tb := range s.tables {
		sink += tb.WarmHash(fh)
	}
	s.warmSink += sink
}

// Warm pre-touches the host cache lines ProcessHash(flow, vni, fh) will
// need — the exact-match entries' modelled sets and the LPM node sets —
// without mutating any model state (LookupHash is read-only and Cache.Warm
// updates nothing). Burst-batched dispatch calls WarmProbes two members
// ahead and Warm one member ahead, so each member's memory is in flight
// while its predecessor computes; results are bit-identical either way.
func (s *Service) Warm(flow packet.FiveTuple, fh uint32) {
	for _, tb := range s.tables {
		if e := tb.LookupHash(flow, fh); e != nil {
			s.cfg.Cache.Warm(e.Addr, e.SizeBytes)
		}
	}
	var addrs [3]uint64
	for i := 0; i < s.prof.lpmLookups; i++ {
		dst := flow.Dst.Uint32()
		if i == 1 {
			dst = flow.Src.Uint32()
		}
		s.lpmAccessAddrs(dst, &addrs)
		for _, a := range addrs {
			s.cfg.Cache.Warm(a, 64)
		}
	}
}

// lpmAccessAddrs derives the synthetic trie-node addresses an LPM lookup
// for dst touches. Top levels are shared across all flows (hot in cache);
// the leaf level fans out per /24 (cold) — matching real multibit-trie
// locality.
func (s *Service) lpmAccessAddrs(dst uint32, out *[3]uint64) {
	out[0] = s.lpmBase + uint64(dst>>24)*64         // level-1 node (256 possible)
	out[1] = s.lpmBase + 1<<20 + uint64(dst>>16)*64 // level-2 node (64K possible)
	// Leaf node region per /24; the slot read inside the 1KB node depends
	// on the host byte (controlled prefix expansion), so distinct /32
	// destinations touch distinct lines.
	out[2] = s.lpmBase + 1<<30 + uint64(dst>>8)*1024 + uint64(dst&0xff)/16*64
}

// Process runs one packet of the given flow through the service chain and
// returns its cost and verdict. The flow must have been installed by
// Populate; unknown flows take the slow path (a miss-heavy ACL default
// deny) and are dropped.
func (s *Service) Process(flow packet.FiveTuple, vni uint32) Result {
	return s.ProcessHash(flow, vni, flow.Hash())
}

// ProcessHash is Process with the caller-precomputed flow.Hash() — the
// burst path hashes once during its warm pass and reuses the value here.
func (s *Service) ProcessHash(flow packet.FiveTuple, vni uint32, fh uint32) Result {
	var hits, misses int

	// Exact-match chain; one tuple hash shared across the chained tables.
	known := true
	for _, tb := range s.tables {
		e := tb.LookupHash(flow, fh)
		if e == nil {
			known = false
			break
		}
		h, m := s.cfg.Cache.Access(e.Addr, e.SizeBytes)
		hits += h
		misses += m
	}

	// LPM route lookups.
	var addrs [3]uint64
	for i := 0; i < s.prof.lpmLookups; i++ {
		dst := flow.Dst.Uint32()
		if i == 1 {
			// Second lookup (Internet route) keys on the source (return
			// path); keeps the two lookups from being identical.
			dst = flow.Src.Uint32()
		}
		_, _ = s.routes.Lookup(dst)
		s.lpmAccessAddrs(dst, &addrs)
		for _, a := range addrs {
			h, m := s.cfg.Cache.Access(a, 64)
			hits += h
			misses += m
		}
	}

	memNS := s.cfg.Latency.Cost(hits, misses) * s.cfg.MemoryMult
	cpuNS := s.prof.baseNS * s.cfg.ComputeMult
	cost := sim.Duration(memNS + cpuNS)

	// The len guard skips the map hash entirely in the common no-ACL-state
	// case; s.denied is only populated for VPC-Internet deny rules.
	drop := !known || (len(s.denied) != 0 && s.denied[flow])
	if !drop && s.acl != nil && s.acl.Evaluate(flow) == ACLDeny {
		drop = true
	}
	return Result{Cost: cost, Drop: drop, Hits: hits, Misses: misses}
}
