// Package ring implements the kernel-bypass driver substrate under the
// gateway dataplane: fixed-size descriptor rings (the RX/TX queue pairs
// each VF exposes) and buffer mempools with per-core caches.
//
// The paper's §4.1 item 4 reports two production incidents this layer
// reproduces: "insufficient PCIe driver descriptors" (an undersized ring
// overflows during bursts, dropping packets and HOL-blocking the reorder
// FIFO) and "a too-small DPDK_RTE_MEMPOOL_CACHE" (per-core allocation
// caches thrash against the shared pool, adding per-packet latency).
package ring

import (
	"fmt"
)

// Ring is a single-producer single-consumer descriptor ring, as used for
// one RX or TX queue. Capacity is a power of two; the ring holds capacity
// descriptors (one slot is not wasted — indices are free-running).
type Ring[T any] struct {
	buf  []T
	mask uint64
	head uint64 // consumer position
	tail uint64 // producer position

	// Enqueued/Dequeued/Rejected are lifetime counters.
	Enqueued uint64
	Dequeued uint64
	Rejected uint64
}

// New creates a ring with the given power-of-two capacity.
func New[T any](capacity int) (*Ring[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ring: capacity %d must be a positive power of two", capacity)
	}
	return &Ring[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}, nil
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued descriptors.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }

// Free returns remaining slots.
func (r *Ring[T]) Free() int { return r.Cap() - r.Len() }

// Enqueue adds one descriptor; false if the ring is full (the "insufficient
// descriptors" drop).
func (r *Ring[T]) Enqueue(v T) bool {
	if r.tail-r.head >= uint64(len(r.buf)) {
		r.Rejected++
		return false
	}
	r.buf[r.tail&r.mask] = v
	r.tail++
	r.Enqueued++
	return true
}

// EnqueueBurst adds up to len(vs) descriptors and returns how many fit
// (DPDK-style burst semantics).
func (r *Ring[T]) EnqueueBurst(vs []T) int {
	n := 0
	for _, v := range vs {
		if !r.Enqueue(v) {
			break
		}
		n++
	}
	return n
}

// Dequeue removes the oldest descriptor.
func (r *Ring[T]) Dequeue() (T, bool) {
	var zero T
	if r.head == r.tail {
		return zero, false
	}
	v := r.buf[r.head&r.mask]
	r.buf[r.head&r.mask] = zero
	r.head++
	r.Dequeued++
	return v, true
}

// DequeueBurst fills out with up to len(out) descriptors, returning the
// count.
func (r *Ring[T]) DequeueBurst(out []T) int {
	n := 0
	for i := range out {
		v, ok := r.Dequeue()
		if !ok {
			break
		}
		out[i] = v
		n++
	}
	return n
}

// Mempool is a fixed-size buffer pool with per-core caches, mirroring
// rte_mempool. Get prefers the caller's core cache; on a cache miss it
// refills from the shared pool (the expensive path the paper's too-small
// DPDK_RTE_MEMPOOL_CACHE forced on every allocation).
type Mempool struct {
	shared    []uint32 // free buffer IDs
	caches    [][]uint32
	cacheSize int

	// SharedRefills counts slow-path refills from/to the shared pool —
	// the contention metric the paper's fix reduced.
	SharedRefills uint64
	// Allocs/Frees are lifetime counters; AllocFails counts exhaustion.
	Allocs     uint64
	Frees      uint64
	AllocFails uint64
}

// NewMempool creates a pool of n buffers shared by cores, each with a
// per-core cache of cacheSize entries (0 disables caching).
func NewMempool(n, cores, cacheSize int) (*Mempool, error) {
	if n <= 0 || cores <= 0 {
		return nil, fmt.Errorf("ring: mempool needs positive size/cores (n=%d cores=%d)", n, cores)
	}
	if cacheSize < 0 {
		return nil, fmt.Errorf("ring: negative cache size")
	}
	m := &Mempool{
		shared:    make([]uint32, n),
		caches:    make([][]uint32, cores),
		cacheSize: cacheSize,
	}
	for i := range m.shared {
		m.shared[i] = uint32(i)
	}
	for i := range m.caches {
		m.caches[i] = make([]uint32, 0, cacheSize)
	}
	return m, nil
}

// CacheSize returns the per-core cache capacity.
func (m *Mempool) CacheSize() int { return m.cacheSize }

// Available returns free buffers in the shared pool (excluding caches).
func (m *Mempool) Available() int { return len(m.shared) }

// Get allocates a buffer for the given core. ok=false means exhaustion.
func (m *Mempool) Get(core int) (uint32, bool) {
	c := &m.caches[core]
	if len(*c) == 0 {
		// Slow path: refill half the cache (or one buffer) from shared.
		refill := m.cacheSize / 2
		if refill < 1 {
			refill = 1
		}
		if refill > len(m.shared) {
			refill = len(m.shared)
		}
		if refill == 0 {
			m.AllocFails++
			return 0, false
		}
		m.SharedRefills++
		*c = append(*c, m.shared[len(m.shared)-refill:]...)
		m.shared = m.shared[:len(m.shared)-refill]
	}
	id := (*c)[len(*c)-1]
	*c = (*c)[:len(*c)-1]
	m.Allocs++
	return id, true
}

// Put returns a buffer from the given core.
func (m *Mempool) Put(core int, id uint32) {
	c := &m.caches[core]
	if len(*c) >= m.cacheSize {
		// Cache full: flush half back to the shared pool.
		flush := m.cacheSize / 2
		if flush < 1 {
			flush = len(*c)
		}
		m.SharedRefills++
		m.shared = append(m.shared, (*c)[len(*c)-flush:]...)
		*c = (*c)[:len(*c)-flush]
	}
	*c = append(*c, id)
	m.Frees++
}

// RefillRate returns shared-pool round trips per allocation — the paper's
// contention signal (a well-sized cache keeps this near zero).
func (m *Mempool) RefillRate() float64 {
	if m.Allocs == 0 {
		return 0
	}
	return float64(m.SharedRefills) / float64(m.Allocs)
}

// QueuePair couples an RX and a TX descriptor ring, as allocated per VF
// per data core (appendix §B: n RX/TX queue pairs per VF).
type QueuePair[T any] struct {
	RX *Ring[T]
	TX *Ring[T]
}

// NewQueuePair creates a pair with the given per-ring depth.
func NewQueuePair[T any](depth int) (*QueuePair[T], error) {
	rx, err := New[T](depth)
	if err != nil {
		return nil, err
	}
	tx, err := New[T](depth)
	if err != nil {
		return nil, err
	}
	return &QueuePair[T]{RX: rx, TX: tx}, nil
}
