package ring

import (
	"testing"
	"testing/quick"

	"albatross/internal/sim"
)

func TestRingValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 100} {
		if _, err := New[int](bad); err == nil {
			t.Errorf("capacity %d accepted", bad)
		}
	}
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 || r.Len() != 0 || r.Free() != 8 {
		t.Fatalf("fresh ring: cap=%d len=%d free=%d", r.Cap(), r.Len(), r.Free())
	}
}

func TestRingFIFO(t *testing.T) {
	r, _ := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue into full ring")
	}
	if r.Rejected != 1 {
		t.Fatalf("rejected = %d", r.Rejected)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue from empty ring")
	}
	if r.Enqueued != 4 || r.Dequeued != 4 {
		t.Fatalf("counters: %d/%d", r.Enqueued, r.Dequeued)
	}
}

func TestRingWraparound(t *testing.T) {
	r, _ := New[int](4)
	// Push/pop enough to wrap the free-running indices several times.
	for i := 0; i < 1000; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d", i)
		}
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("wraparound broke at %d: %d %v", i, v, ok)
		}
	}
}

func TestRingBurst(t *testing.T) {
	r, _ := New[int](8)
	n := r.EnqueueBurst([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if n != 8 {
		t.Fatalf("burst enqueue = %d", n)
	}
	out := make([]int, 5)
	if got := r.DequeueBurst(out); got != 5 {
		t.Fatalf("burst dequeue = %d", got)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("burst order: %v", out)
		}
	}
	out2 := make([]int, 10)
	if got := r.DequeueBurst(out2); got != 3 {
		t.Fatalf("second burst = %d", got)
	}
}

func TestRingFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r, _ := New[uint64](16)
		var model []uint64
		next := uint64(0)
		for _, op := range ops {
			if op%2 == 0 {
				okRing := r.Enqueue(next)
				okModel := len(model) < 16
				if okRing != okModel {
					return false
				}
				if okModel {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMempoolValidation(t *testing.T) {
	if _, err := NewMempool(0, 1, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewMempool(10, 0, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewMempool(10, 1, -1); err == nil {
		t.Fatal("negative cache accepted")
	}
}

func TestMempoolGetPut(t *testing.T) {
	m, err := NewMempool(64, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheSize() != 8 {
		t.Fatal("cache size")
	}
	seen := map[uint32]bool{}
	var ids []uint32
	for i := 0; i < 64; i++ {
		id, ok := m.Get(i % 2)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[id] {
			t.Fatalf("buffer %d double-allocated", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	// Exhausted (all buffers either allocated).
	if _, ok := m.Get(0); ok {
		t.Fatal("alloc beyond pool size")
	}
	if m.AllocFails != 1 {
		t.Fatalf("alloc fails = %d", m.AllocFails)
	}
	for i, id := range ids {
		m.Put(i%2, id)
	}
	// Everything reusable again (allocating from the same cores that
	// freed: per-core caches strand buffers from other cores by design).
	for i := 0; i < 64; i++ {
		if _, ok := m.Get(i % 2); !ok {
			t.Fatalf("realloc %d failed", i)
		}
	}
}

func TestMempoolCacheReducesSharedTraffic(t *testing.T) {
	run := func(cacheSize int) float64 {
		m, _ := NewMempool(4096, 4, cacheSize)
		// Burst pattern: each core allocates a 32-packet RX burst, then
		// frees it after TX — the dataplane shape that thrashes tiny
		// caches against the shared pool.
		var held [4][]uint32
		for i := 0; i < 10000; i++ {
			core := i % 4
			for j := 0; j < 32; j++ {
				id, ok := m.Get(core)
				if !ok {
					t.Fatal("exhausted")
				}
				held[core] = append(held[core], id)
			}
			for _, id := range held[core] {
				m.Put(core, id)
			}
			held[core] = held[core][:0]
		}
		return m.RefillRate()
	}
	small := run(1)
	large := run(256)
	if small < large*10 {
		t.Fatalf("tiny cache refill rate %.4f should dwarf large cache %.4f", small, large)
	}
	if large > 0.01 {
		t.Fatalf("well-sized cache refill rate = %.4f, want ~0", large)
	}
}

func TestMempoolZeroCache(t *testing.T) {
	m, _ := NewMempool(16, 1, 0)
	// Every Get hits the shared pool.
	for i := 0; i < 8; i++ {
		if _, ok := m.Get(0); !ok {
			t.Fatal("alloc failed")
		}
	}
	if m.SharedRefills != 8 {
		t.Fatalf("refills = %d, want 8 (no caching)", m.SharedRefills)
	}
}

func TestMempoolConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const n, cores = 64, 3
		m, _ := NewMempool(n, cores, 4)
		held := map[uint32]int{} // id -> holding core
		for _, op := range ops {
			core := int(op) % cores
			if op%2 == 0 {
				id, ok := m.Get(core)
				if ok {
					if _, dup := held[id]; dup {
						return false // double allocation
					}
					held[id] = core
				}
			} else {
				for id, c := range held {
					if c == core {
						m.Put(core, id)
						delete(held, id)
						break
					}
				}
			}
		}
		// Total buffers = shared + cached + held.
		cached := 0
		for i := 0; i < cores; i++ {
			// Drain each core's cache by allocating until shared shrinks...
			// simpler: account via counters.
			_ = i
		}
		_ = cached
		return int(m.Allocs-m.Frees) == len(held)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePair(t *testing.T) {
	qp, err := NewQueuePair[string](16)
	if err != nil {
		t.Fatal(err)
	}
	qp.RX.Enqueue("in")
	qp.TX.Enqueue("out")
	if v, _ := qp.RX.Dequeue(); v != "in" {
		t.Fatal("rx")
	}
	if v, _ := qp.TX.Dequeue(); v != "out" {
		t.Fatal("tx")
	}
	if _, err := NewQueuePair[int](3); err == nil {
		t.Fatal("bad depth accepted")
	}
}

func TestRingUnderBurstyArrivals(t *testing.T) {
	// The §4.1 driver lesson in miniature: a burst larger than the ring
	// depth drops the excess, a deeper ring absorbs it.
	r := sim.NewRand(1)
	burst := make([]int, 600)
	for i := range burst {
		burst[i] = r.Intn(1000)
	}
	shallow, _ := New[int](512)
	deep, _ := New[int](1024)
	if n := shallow.EnqueueBurst(burst); n != 512 {
		t.Fatalf("shallow admitted %d", n)
	}
	if n := deep.EnqueueBurst(burst); n != 600 {
		t.Fatalf("deep admitted %d", n)
	}
	if shallow.Rejected == 0 {
		t.Fatal("no rejections on shallow ring")
	}
}

func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r, _ := New[uint64](4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(uint64(i))
		r.Dequeue()
	}
}

func BenchmarkMempoolGetPutCached(b *testing.B) {
	m, _ := NewMempool(8192, 1, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, _ := m.Get(0)
		m.Put(0, id)
	}
}

func BenchmarkMempoolGetPutUncached(b *testing.B) {
	m, _ := NewMempool(8192, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, _ := m.Get(0)
		m.Put(0, id)
	}
}
