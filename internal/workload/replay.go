package workload

import (
	"fmt"
	"io"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// ReplaySource replays a pcap capture into a sink at the recorded
// timestamps (virtual time), parsing each frame's tenant flow from its
// VXLAN/Geneve encapsulation. It turns real traces — or captures produced
// by albatross-sim's -pcap flag — into simulation input.
type ReplaySource struct {
	// Sink receives each replayed packet. Required.
	Sink func(f Flow, bytes int)
	// Speedup divides inter-packet gaps (2.0 = replay twice as fast).
	// Default 1.0.
	Speedup float64
	// Loop repeats the capture this many times (default 1). Timestamps of
	// later loops continue from the previous loop's end.
	Loop int

	// Replayed counts packets delivered; Skipped counts frames that did
	// not parse to a flow.
	Replayed uint64
	Skipped  uint64
}

// Start reads the entire capture from r, schedules every packet on the
// engine, and returns. Parsing happens up front so malformed captures fail
// fast.
func (rs *ReplaySource) Start(engine *sim.Engine, r io.Reader) error {
	if rs.Sink == nil {
		return fmt.Errorf("workload: replay source has no sink")
	}
	if rs.Speedup <= 0 {
		rs.Speedup = 1
	}
	if rs.Loop <= 0 {
		rs.Loop = 1
	}
	pr, err := packet.NewPcapReader(r)
	if err != nil {
		return err
	}
	pkts, err := pr.ReadAll()
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return fmt.Errorf("workload: empty capture")
	}

	type item struct {
		at    sim.Duration
		flow  Flow
		bytes int
		ok    bool
	}
	items := make([]item, 0, len(pkts))
	var parsed packet.Parsed
	base := pkts[0].TS
	var span sim.Duration
	for _, p := range pkts {
		it := item{
			at:    sim.Duration(float64(p.TS-base) / rs.Speedup),
			bytes: p.OrigLen,
		}
		if tuple, vni, ok := packet.ExtractFlow(p.Data, &parsed); ok {
			it.flow = Flow{Tuple: tuple, VNI: vni}
			it.ok = true
		}
		if it.at > span {
			span = it.at
		}
		items = append(items, it)
	}
	// A single-packet capture still needs a nonzero loop stride.
	if span == 0 {
		span = 1
	}

	now := engine.Now()
	for loop := 0; loop < rs.Loop; loop++ {
		offset := sim.Duration(loop) * (span + 1)
		for _, it := range items {
			if !it.ok {
				rs.Skipped++
				continue
			}
			it := it
			engine.At(now.Add(offset+it.at), func() {
				rs.Replayed++
				rs.Sink(it.flow, it.bytes)
			})
		}
	}
	return nil
}
