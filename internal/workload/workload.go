// Package workload generates the synthetic traffic the paper's experiments
// describe: 500K-concurrent-flow tenant mixes, Zipf-popular flows, periodic
// microbursts (the production phenomenon behind Fig. 9/10), and heavy-
// hitter schedules (Fig. 8, 13, 14).
//
// Sources are event-driven Poisson (or deterministic) arrival processes on
// the virtual-time engine; each arrival invokes a sink callback with the
// flow and packet size.
package workload

import (
	"albatross/internal/errs"
	"fmt"

	"albatross/internal/packet"
	"albatross/internal/service"
	"albatross/internal/sim"
)

// Flow is one tenant flow.
type Flow struct {
	Tuple packet.FiveTuple
	VNI   uint32
}

// GenerateFlows deterministically creates n flows spread over the given
// number of tenants. Destinations cluster into /24s (as production VIP
// ranges do), sources spread widely.
func GenerateFlows(n, tenants int, seed uint64) []Flow {
	if tenants <= 0 {
		tenants = 1
	}
	r := sim.NewRand(seed)
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{
			Tuple: packet.FiveTuple{
				Src:   packet.IPv4FromUint32(0x0a000000 | r.Uint32()&0x00ffffff),
				Dst:   packet.IPv4FromUint32(0x30000000 | r.Uint32()&0x00ffffff),
				Proto: packet.IPProtocolTCP,
				SPort: uint16(1024 + r.Intn(60000)),
				DPort: 443,
			},
			VNI: uint32(r.Intn(tenants)),
		}
	}
	return flows
}

// ServiceFlows converts workload flows to the service package's install
// format, marking a deterministic fraction as ACL-denied.
func ServiceFlows(flows []Flow, deniedFrac float64) []service.Flow {
	out := make([]service.Flow, len(flows))
	for i, f := range flows {
		out[i] = service.Flow{
			Tuple:  f.Tuple,
			VNI:    f.VNI,
			Denied: deniedFrac > 0 && float64(f.Tuple.Hash()%10000) < deniedFrac*10000,
		}
	}
	return out
}

// RateFn returns the offered rate in packets/second at virtual time t.
type RateFn func(t sim.Time) float64

// ConstantRate offers a fixed rate.
func ConstantRate(pps float64) RateFn {
	return func(sim.Time) float64 { return pps }
}

// StepRate offers `before` pps until at, then `after` pps — the Fig. 13/14
// "tenant 1 raises its rate to 34Mpps at the 15th second" shape.
func StepRate(before, after float64, at sim.Time) RateFn {
	return func(t sim.Time) float64 {
		if t < at {
			return before
		}
		return after
	}
}

// RampRate linearly ramps from 0 to max over the given duration, then
// holds — the Fig. 8 heavy-hitter sweep.
func RampRate(max float64, over sim.Duration) RateFn {
	return func(t sim.Time) float64 {
		if sim.Duration(t) >= over {
			return max
		}
		return max * float64(t) / float64(over)
	}
}

// Microburst modulates a base rate with periodic bursts: every `period`,
// the rate multiplies by `factor` for `burstLen`. Cloud gateways see many
// such sub-second bursts (paper §6, Fig. 10).
func Microburst(base RateFn, factor float64, period, burstLen sim.Duration) RateFn {
	return func(t sim.Time) float64 {
		r := base(t)
		if period <= 0 {
			return r
		}
		phase := sim.Duration(t) % period
		if phase < burstLen {
			return r * factor
		}
		return r
	}
}

// Source is a Poisson (or deterministic) arrival process over a flow set.
type Source struct {
	// Flows to draw from. Required.
	Flows []Flow
	// Rate is the offered aggregate rate. Required.
	Rate RateFn
	// PacketBytes is the wire size of generated packets (paper tests use
	// 256B). Default 256.
	PacketBytes int
	// ZipfExponent skews flow popularity; 0 = uniform.
	ZipfExponent float64
	// Deterministic spaces arrivals exactly 1/rate apart instead of
	// exponentially.
	Deterministic bool
	// Seed for the arrival and flow-pick RNG.
	Seed uint64
	// Sink receives each arrival. Required.
	Sink func(f Flow, bytes int)

	engine  *sim.Engine
	rng     *sim.Rand
	zipf    *sim.Zipf
	stopped bool
	// Generated counts emitted packets.
	Generated uint64
}

// Start begins generating arrivals on the engine until Stop or the end of
// simulation.
func (s *Source) Start(engine *sim.Engine) error {
	if len(s.Flows) == 0 {
		return fmt.Errorf("workload: source has no flows: %w", errs.BadConfig)
	}
	if s.Rate == nil {
		return fmt.Errorf("workload: source has no rate function: %w", errs.BadConfig)
	}
	if s.Sink == nil {
		return fmt.Errorf("workload: source has no sink: %w", errs.BadConfig)
	}
	if s.PacketBytes <= 0 {
		s.PacketBytes = 256
	}
	s.engine = engine
	s.rng = sim.NewRand(s.Seed)
	if s.ZipfExponent > 0 {
		s.zipf = sim.NewZipf(s.rng, len(s.Flows), s.ZipfExponent)
	}
	s.stopped = false
	s.scheduleNext()
	return nil
}

// Stop halts the source.
func (s *Source) Stop() { s.stopped = true }

func (s *Source) scheduleNext() {
	if s.stopped {
		return
	}
	rate := s.Rate(s.engine.Now())
	if rate <= 0 {
		// Idle: poll again shortly (1ms) for the rate to come back.
		s.engine.After(sim.Millisecond, s.scheduleNext)
		return
	}
	mean := sim.Duration(float64(sim.Second) / rate)
	var gap sim.Duration
	if s.Deterministic {
		gap = mean
	} else {
		gap = s.rng.Exp(mean)
	}
	if gap < 1 {
		gap = 1
	}
	s.engine.After(gap, func() {
		if s.stopped {
			return
		}
		s.emit()
		s.scheduleNext()
	})
}

func (s *Source) emit() {
	var idx int
	if s.zipf != nil {
		idx = s.zipf.Next()
	} else {
		idx = s.rng.Intn(len(s.Flows))
	}
	s.Generated++
	s.Sink(s.Flows[idx], s.PacketBytes)
}

// TenantSource generates traffic for exactly one tenant (all packets carry
// its VNI) — the building block of the Fig. 13/14 experiments.
func TenantSource(vni uint32, nFlows int, rate RateFn, seed uint64, sink func(Flow, int)) *Source {
	flows := GenerateFlows(nFlows, 1, seed)
	for i := range flows {
		flows[i].VNI = vni
	}
	return &Source{Flows: flows, Rate: rate, Seed: seed ^ 0x9e37, Sink: sink}
}
