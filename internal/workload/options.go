package workload

import (
	"fmt"

	"albatross/internal/errs"
)

// Option configures a Source built by New. Options replace the older
// struct-literal construction (`&Source{...}`) everywhere a caller wants
// eager validation: New rejects an incomplete or contradictory source at
// build time instead of at Start.
type Option func(*Source)

// WithFlows sets the flow set arrivals draw from. Required.
func WithFlows(flows []Flow) Option {
	return func(s *Source) { s.Flows = flows }
}

// WithRate sets the offered aggregate rate function. Required.
func WithRate(rate RateFn) Option {
	return func(s *Source) { s.Rate = rate }
}

// WithSeed seeds the arrival and flow-pick RNG.
func WithSeed(seed uint64) Option {
	return func(s *Source) { s.Seed = seed }
}

// WithSink sets the per-arrival callback. Required.
func WithSink(sink func(f Flow, bytes int)) Option {
	return func(s *Source) { s.Sink = sink }
}

// WithPacketBytes overrides the generated wire size (default 256B).
func WithPacketBytes(n int) Option {
	return func(s *Source) { s.PacketBytes = n }
}

// WithZipf skews flow popularity with the given Zipf exponent.
func WithZipf(exponent float64) Option {
	return func(s *Source) { s.ZipfExponent = exponent }
}

// WithDeterministic spaces arrivals exactly 1/rate apart instead of
// exponentially.
func WithDeterministic() Option {
	return func(s *Source) { s.Deterministic = true }
}

// New builds a Source from options and validates it eagerly. All
// validation errors wrap errs.BadConfig.
func New(opts ...Option) (*Source, error) {
	s := &Source{}
	for _, opt := range opts {
		opt(s)
	}
	if len(s.Flows) == 0 {
		return nil, fmt.Errorf("workload: source has no flows: %w", errs.BadConfig)
	}
	if s.Rate == nil {
		return nil, fmt.Errorf("workload: source has no rate function: %w", errs.BadConfig)
	}
	if s.Sink == nil {
		return nil, fmt.Errorf("workload: source has no sink: %w", errs.BadConfig)
	}
	if s.PacketBytes < 0 {
		return nil, fmt.Errorf("workload: negative packet size %d: %w", s.PacketBytes, errs.BadConfig)
	}
	if s.PacketBytes == 0 {
		s.PacketBytes = 256
	}
	if s.ZipfExponent < 0 {
		return nil, fmt.Errorf("workload: negative Zipf exponent %g: %w", s.ZipfExponent, errs.BadConfig)
	}
	return s, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// a validation error. Experiment code uses it where a config error is a
// programming bug, not an input error.
func MustNew(opts ...Option) *Source {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}
