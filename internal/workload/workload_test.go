package workload

import (
	"math"
	"testing"

	"albatross/internal/sim"
)

func TestGenerateFlowsDeterministic(t *testing.T) {
	a := GenerateFlows(1000, 50, 1)
	b := GenerateFlows(1000, 50, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("flow generation not deterministic")
		}
	}
	c := GenerateFlows(1000, 50, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d identical flows", same)
	}
}

func TestGenerateFlowsTenants(t *testing.T) {
	flows := GenerateFlows(10000, 16, 3)
	seen := map[uint32]int{}
	for _, f := range flows {
		if f.VNI >= 16 {
			t.Fatalf("VNI %d out of range", f.VNI)
		}
		seen[f.VNI]++
	}
	if len(seen) != 16 {
		t.Fatalf("only %d tenants used", len(seen))
	}
	// Zero tenants defaults to one.
	for _, f := range GenerateFlows(10, 0, 1) {
		if f.VNI != 0 {
			t.Fatal("degenerate tenant count")
		}
	}
}

func TestServiceFlowsDeniedFraction(t *testing.T) {
	flows := GenerateFlows(20000, 10, 4)
	sf := ServiceFlows(flows, 0.1)
	denied := 0
	for _, f := range sf {
		if f.Denied {
			denied++
		}
	}
	frac := float64(denied) / float64(len(sf))
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("denied fraction = %v, want ~0.1", frac)
	}
	for _, f := range ServiceFlows(flows, 0) {
		if f.Denied {
			t.Fatal("denial with zero fraction")
		}
	}
}

func TestRateFunctions(t *testing.T) {
	c := ConstantRate(5e6)
	if c(0) != 5e6 || c(sim.Time(sim.Second)) != 5e6 {
		t.Fatal("constant rate")
	}
	s := StepRate(4e6, 34e6, sim.Time(15*sim.Second))
	if s(0) != 4e6 || s(sim.Time(14*sim.Second)) != 4e6 {
		t.Fatal("step before")
	}
	if s(sim.Time(15*sim.Second)) != 34e6 || s(sim.Time(20*sim.Second)) != 34e6 {
		t.Fatal("step after")
	}
	r := RampRate(10e6, 10*sim.Second)
	if r(0) != 0 {
		t.Fatal("ramp start")
	}
	if math.Abs(r(sim.Time(5*sim.Second))-5e6) > 1 {
		t.Fatal("ramp middle")
	}
	if r(sim.Time(20*sim.Second)) != 10e6 {
		t.Fatal("ramp plateau")
	}
}

func TestMicroburst(t *testing.T) {
	m := Microburst(ConstantRate(1e6), 10, 100*sim.Millisecond, 5*sim.Millisecond)
	if m(0) != 10e6 {
		t.Fatalf("burst phase = %v", m(0))
	}
	if m(sim.Time(50*sim.Millisecond)) != 1e6 {
		t.Fatal("quiet phase")
	}
	if m(sim.Time(102*sim.Millisecond)) != 10e6 {
		t.Fatal("second burst")
	}
	// Zero period: passthrough.
	p := Microburst(ConstantRate(2e6), 10, 0, sim.Millisecond)
	if p(12345) != 2e6 {
		t.Fatal("zero-period passthrough")
	}
}

func TestSourceValidation(t *testing.T) {
	e := sim.NewEngine()
	if err := (&Source{}).Start(e); err == nil {
		t.Fatal("empty source started")
	}
	if err := (&Source{Flows: GenerateFlows(1, 1, 1)}).Start(e); err == nil {
		t.Fatal("source without rate started")
	}
	if err := (&Source{Flows: GenerateFlows(1, 1, 1), Rate: ConstantRate(1)}).Start(e); err == nil {
		t.Fatal("source without sink started")
	}
}

func TestSourceRateAccuracy(t *testing.T) {
	e := sim.NewEngine()
	n := 0
	src := &Source{
		Flows: GenerateFlows(100, 4, 1),
		Rate:  ConstantRate(1e6), // 1 Mpps
		Seed:  7,
		Sink:  func(Flow, int) { n++ },
	}
	if err := src.Start(e); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(sim.Time(100 * sim.Millisecond)) // expect ~100K packets
	if n < 95000 || n > 105000 {
		t.Fatalf("generated %d packets in 100ms at 1Mpps", n)
	}
	if src.Generated != uint64(n) {
		t.Fatal("Generated counter mismatch")
	}
}

func TestSourceDeterministicSpacing(t *testing.T) {
	e := sim.NewEngine()
	var times []sim.Time
	src := &Source{
		Flows:         GenerateFlows(10, 1, 1),
		Rate:          ConstantRate(1e6),
		Deterministic: true,
		Sink:          func(Flow, int) { times = append(times, e.Now()) },
	}
	src.Start(e)
	e.RunUntil(sim.Time(10 * sim.Microsecond))
	if len(times) != 10 {
		t.Fatalf("generated %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != sim.Time(sim.Microsecond) {
			t.Fatalf("spacing %v", times[i]-times[i-1])
		}
	}
}

func TestSourceStop(t *testing.T) {
	e := sim.NewEngine()
	n := 0
	src := &Source{
		Flows: GenerateFlows(10, 1, 1),
		Rate:  ConstantRate(1e6),
		Sink:  func(Flow, int) { n++ },
	}
	src.Start(e)
	e.RunUntil(sim.Time(sim.Millisecond))
	src.Stop()
	at := n
	e.RunUntil(sim.Time(10 * sim.Millisecond))
	if n != at {
		t.Fatalf("source generated after Stop: %d -> %d", at, n)
	}
}

func TestSourceZeroRateIdles(t *testing.T) {
	e := sim.NewEngine()
	n := 0
	src := &Source{
		Flows: GenerateFlows(10, 1, 1),
		Rate:  StepRate(0, 1e6, sim.Time(50*sim.Millisecond)),
		Sink:  func(Flow, int) { n++ },
	}
	src.Start(e)
	e.RunUntil(sim.Time(40 * sim.Millisecond))
	if n != 0 {
		t.Fatalf("generated %d during zero-rate phase", n)
	}
	e.RunUntil(sim.Time(100 * sim.Millisecond))
	if n == 0 {
		t.Fatal("source never resumed after rate step")
	}
}

func TestSourceZipfSkew(t *testing.T) {
	e := sim.NewEngine()
	counts := map[uint32]int{}
	flows := GenerateFlows(1000, 1000, 1)
	for i := range flows {
		flows[i].VNI = uint32(i) // identify flows by VNI
	}
	src := &Source{
		Flows:        flows,
		Rate:         ConstantRate(1e6),
		ZipfExponent: 1.2,
		Seed:         3,
		Sink:         func(f Flow, _ int) { counts[f.VNI]++ },
	}
	src.Start(e)
	e.RunUntil(sim.Time(100 * sim.Millisecond))
	if counts[0] < counts[500]*5 {
		t.Fatalf("Zipf skew missing: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestTenantSource(t *testing.T) {
	e := sim.NewEngine()
	got := map[uint32]int{}
	src := TenantSource(42, 50, ConstantRate(1e6), 9, func(f Flow, _ int) { got[f.VNI]++ })
	if err := src.Start(e); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(sim.Time(10 * sim.Millisecond))
	if len(got) != 1 || got[42] == 0 {
		t.Fatalf("tenant source VNIs = %v", got)
	}
}

func TestSourcePacketSizeDefault(t *testing.T) {
	e := sim.NewEngine()
	var size int
	src := &Source{
		Flows: GenerateFlows(1, 1, 1),
		Rate:  ConstantRate(1e6),
		Sink:  func(_ Flow, b int) { size = b },
	}
	src.Start(e)
	e.RunUntil(sim.Time(sim.Millisecond))
	if size != 256 {
		t.Fatalf("default packet size = %d", size)
	}
}
