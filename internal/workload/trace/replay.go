package trace

import (
	"fmt"

	"albatross/internal/sim"
	"albatross/internal/workload"
)

// Replayer drives a sink — a pod's Inject, a node ingress, or a whole
// cluster's ECMP spray — from a saved schedule, reproducing the recorded
// injection instants on the virtual clock.
//
// Fidelity note: the replayer deliberately schedules ONE event ahead, the
// same insertion discipline a live workload.Source uses (the next arrival
// is enqueued from inside the current arrival's callback, after the
// pipeline events the injection spawned). Pre-scheduling the whole trace
// up front would reorder same-nanosecond ties between arrivals and
// pipeline completions and break byte-identical record-vs-replay metrics.
type Replayer struct {
	// Injected counts delivered events.
	Injected uint64

	trace  *Trace
	sink   func(workload.Flow, int)
	engine *sim.Engine
	base   sim.Time
	next   int
}

// Replay validates the trace and schedules its first event on the engine,
// offsets measured from the engine's current virtual time. The returned
// Replayer finishes on its own as the engine runs past the schedule span.
func Replay(engine *sim.Engine, t *Trace, sink func(workload.Flow, int)) (*Replayer, error) {
	if sink == nil {
		return nil, fmt.Errorf("trace: replay into nil sink: %w", ErrBadTrace)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	rp := &Replayer{trace: t, sink: sink, engine: engine, base: engine.Now()}
	rp.scheduleNext()
	return rp, nil
}

// Done reports whether every event has been injected.
func (rp *Replayer) Done() bool { return rp.next >= len(rp.trace.Events) }

func (rp *Replayer) scheduleNext() {
	if rp.Done() {
		return
	}
	ev := &rp.trace.Events[rp.next]
	rp.engine.AtArg(rp.base.Add(ev.At), replayStep, rp)
}

func replayStep(arg any) {
	rp := arg.(*Replayer)
	ev := &rp.trace.Events[rp.next]
	rp.next++
	rp.Injected++
	// Inject first, then arm the next arrival: the pipeline events this
	// injection spawns must enter the queue before the next arrival does,
	// exactly as a live Source's emit-then-scheduleNext callback orders
	// them.
	rp.sink(ev.Flow, ev.Bytes)
	rp.scheduleNext()
}
