package trace_test

import (
	"bytes"
	"errors"
	"testing"

	"albatross/internal/errs"
	"albatross/internal/workload/trace"
)

// FuzzRead throws arbitrary byte streams at the trace decoder. The
// contract under fuzz: never panic, reject malformed input with an error
// wrapping both ErrBadTrace and the errs.BadConfig sentinel, and decode
// only traces that re-serialize canonically.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("ALBT"))
	f.Add(good[:len(good)/2])
	mangled := bytes.Clone(good)
	mangled[len(mangled)-1] ^= 0xff
	f.Add(mangled)
	short := bytes.Clone(good[:16])
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, trace.ErrBadTrace) || !errors.Is(err, errs.BadConfig) {
				t.Fatalf("rejection %v does not wrap ErrBadTrace/errs.BadConfig", err)
			}
			return
		}
		// Accepted input must be a canonical encoding: writing the decoded
		// trace reproduces a stream that decodes to the same events.
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		back, err := trace.Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an accepted trace failed: %v", err)
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(back.Events), len(tr.Events))
		}
	})
}
