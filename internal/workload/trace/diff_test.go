package trace_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

var update = flag.Bool("update", false, "rewrite the differ golden files from the current output")

// golden compares got against testdata/<name>, rewriting the file when the
// -update flag is set.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/workload/trace/ -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update after intentional changes):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// crashScenario records a short live run on a tiny 3-node cluster, then
// replays the trace twice — once healthy, once with node 1 crashing inside
// the traffic window — and returns the two outcome reports. The simulation
// is deterministic byte-for-byte, so the resulting diff is golden-stable.
func crashScenario(t *testing.T) (healthy, crashed string) {
	t.Helper()
	const seed = 11
	wf := workload.GenerateFlows(300, 16, seed)
	podCfg := core.PodConfig{
		Spec:             pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1, Mode: pod.ModePLB},
		Flows:            workload.ServiceFlows(wf, 0),
		JitterSigma:      -1, // schedule-determined outcomes (see figures_replay.go)
		TraceSampleEvery: 64,
	}
	totalLen := 300 * sim.Millisecond

	recCl, err := cluster.New(cluster.Config{Nodes: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := recCl.AddPod(podCfg); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(recCl.Engine)
	src, err := workload.New(
		workload.WithFlows(wf),
		workload.WithRate(workload.ConstantRate(1e5)),
		workload.WithSeed(seed+1),
		workload.WithSink(recCl.RecordingSink(rec)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Start(recCl.Engine); err != nil {
		t.Fatal(err)
	}
	recCl.RunFor(10 * sim.Millisecond)
	src.Stop()
	recCl.RunFor(totalLen - 10*sim.Millisecond)
	tr := rec.Trace()

	replay := func(plan *faults.Plan) string {
		cl, err := cluster.New(cluster.Config{Nodes: 3, Seed: seed, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.AddPod(podCfg); err != nil {
			t.Fatal(err)
		}
		rp, err := cl.ReplayTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		cl.RunFor(totalLen)
		if !rp.Done() {
			t.Fatal("replay did not complete")
		}
		return cl.Outcome()
	}
	return replay(nil), replay((&faults.Plan{}).NodeCrash(5*sim.Millisecond, 1, 2*sim.Second))
}

// TestDiffGolden pins the differ's two canonical renderings: identical
// replays produce the "no differences" report, and a node-crash replay
// produces a delta confined to the crashed node, the cluster ECMP totals,
// and the metrics checksum.
func TestDiffGolden(t *testing.T) {
	healthy, crashed := crashScenario(t)

	same := trace.Diff("healthy", healthy, "healthy-bis", healthy)
	if !same.Empty() {
		t.Fatalf("identical reports produced a non-empty diff: %s", same.String())
	}
	golden(t, "diff_no_differences.golden", same.String())

	d := trace.Diff("healthy", healthy, "crash", crashed)
	if d.Empty() {
		t.Fatal("node-crash replay produced an identical outcome report")
	}
	for _, k := range d.ChangedKeys() {
		if k != "cluster/traffic" && k != "metrics/fnv64a" && !strings.HasPrefix(k, "node1/") {
			t.Fatalf("diff leaked outside the crashed node's lines: %q", k)
		}
	}
	golden(t, "diff_node_crash.golden", d.String())
}

// TestDiffShardLabels covers AnnotateShards: with shards > 1 every nodeN
// line in the rendering carries its owning shard (node mod shards, the
// canonical ShardOfNode mapping), non-node lines stay unlabeled, and
// shards <= 1 disables the labels entirely. Keys themselves are untouched —
// outcome reports are byte-identical at any shard count, so the labels are
// a rendering aid only.
func TestDiffShardLabels(t *testing.T) {
	a := "node0/traffic | rx=1\nnode5/traffic | rx=2\ncluster/traffic | s=3\nnode7/avail | up\n"
	b := "node0/traffic | rx=9\nnode5/traffic | rx=2\ncluster/traffic | s=4\n"
	d := trace.Diff("A", a, "B", b)
	d.AnnotateShards(4)
	s := d.String()
	for _, frag := range []string{
		"~ node0/traffic [shard 0]",
		"~ cluster/traffic\n", // non-node key: no label
		"- node7/avail [shard 3] (only in A)",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("shard-labeled rendering missing %q:\n%s", frag, s)
		}
	}
	if trace.ShardOfNode(7, 4) != 3 || trace.ShardOfNode(7, 1) != 0 {
		t.Fatal("ShardOfNode mapping changed")
	}
	d.AnnotateShards(1)
	if strings.Contains(d.String(), "[shard") {
		t.Fatal("shards=1 rendering still carries shard labels")
	}
}

// TestDiffOneSidedKeys covers lines present in only one report — the
// differ must list them under the +/- sections in report order.
func TestDiffOneSidedKeys(t *testing.T) {
	a := "alpha | 1\nshared | x\nzeta | 2\n"
	b := "shared | y\nnew/line | 3\n"
	d := trace.Diff("A", a, "B", b)
	if len(d.Changed) != 1 || d.Changed[0].Key != "shared" {
		t.Fatalf("changed = %+v, want only 'shared'", d.Changed)
	}
	if len(d.OnlyA) != 2 || d.OnlyA[0] != "alpha" || d.OnlyA[1] != "zeta" {
		t.Fatalf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != "new/line" {
		t.Fatalf("OnlyB = %v", d.OnlyB)
	}
	s := d.String()
	for _, frag := range []string{"~ shared", "- alpha (only in A)", "+ new/line (only in B)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}
