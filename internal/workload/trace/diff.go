package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Outcome reports are keyed line sets: each line is "key | values" (see
// cluster.Outcome). Diff matches lines by key, so reports from runs with
// different node counts or fault plans compare structurally — a changed
// value surfaces as a delta under its key, an added or removed node
// surfaces as a one-sided key.

// DiffLine is one key whose value differs between the two reports.
type DiffLine struct {
	Key  string
	A, B string
}

// DiffReport is the structured comparison of two outcome reports.
type DiffReport struct {
	LabelA, LabelB string
	// Changed holds keys present in both reports with different values,
	// in the A report's order.
	Changed []DiffLine
	// OnlyA and OnlyB hold keys present in one report only, in report
	// order.
	OnlyA, OnlyB []string
	// shards, when > 1, annotates rendered node lines with the owning
	// shard (see AnnotateShards).
	shards int
}

// ShardOfNode is the canonical node→shard assignment of a sharded cluster
// run: member i lives on shard i mod shards. The cluster layer and the
// diff renderer both use it, so diff labels always name the engine that
// actually executed the node.
func ShardOfNode(node, shards int) int {
	if shards <= 1 {
		return 0
	}
	return node % shards
}

// AnnotateShards makes String() label every nodeN line with its owning
// shard under the given shard count — so a diff of sharded-run outcomes
// stays line-keyed (keys are untouched; outcome reports are byte-identical
// at any shard count) while showing which shard engine owned each differing
// node. shards <= 1 disables the labels.
func (d *DiffReport) AnnotateShards(shards int) { d.shards = shards }

// shardLabel returns the " [shard N]" suffix for a key, or "".
func (d *DiffReport) shardLabel(key string) string {
	if d.shards <= 1 || !strings.HasPrefix(key, "node") {
		return ""
	}
	rest := key[len("node"):]
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		return ""
	}
	node, err := strconv.Atoi(rest[:slash])
	if err != nil {
		return ""
	}
	return fmt.Sprintf(" [shard %d]", ShardOfNode(node, d.shards))
}

// Empty reports whether the two outcome reports are identical.
func (d *DiffReport) Empty() bool {
	return len(d.Changed) == 0 && len(d.OnlyA) == 0 && len(d.OnlyB) == 0
}

// ChangedKeys returns the keys of all differing lines (changed plus
// one-sided), in report order.
func (d *DiffReport) ChangedKeys() []string {
	keys := make([]string, 0, len(d.Changed)+len(d.OnlyA)+len(d.OnlyB))
	for _, c := range d.Changed {
		keys = append(keys, c.Key)
	}
	keys = append(keys, d.OnlyA...)
	keys = append(keys, d.OnlyB...)
	return keys
}

// String renders the stable textual diff report.
func (d *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay diff: %s vs %s\n", d.LabelA, d.LabelB)
	if d.Empty() {
		b.WriteString("  no differences: outcome reports are identical\n")
		return b.String()
	}
	width := len(d.LabelA)
	if len(d.LabelB) > width {
		width = len(d.LabelB)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(&b, "  ~ %s%s\n", c.Key, d.shardLabel(c.Key))
		fmt.Fprintf(&b, "      %-*s | %s\n", width, d.LabelA, c.A)
		fmt.Fprintf(&b, "      %-*s | %s\n", width, d.LabelB, c.B)
	}
	for _, k := range d.OnlyA {
		fmt.Fprintf(&b, "  - %s%s (only in %s)\n", k, d.shardLabel(k), d.LabelA)
	}
	for _, k := range d.OnlyB {
		fmt.Fprintf(&b, "  + %s%s (only in %s)\n", k, d.shardLabel(k), d.LabelB)
	}
	return b.String()
}

// parseOutcome splits an outcome report into (key, value) pairs in report
// order. Lines without the " | " separator (the header line, blanks) are
// keyed by their full text with an empty value, so any textual change in
// them still registers.
func parseOutcome(report string) (keys []string, vals map[string]string) {
	vals = make(map[string]string)
	for _, line := range strings.Split(report, "\n") {
		line = strings.TrimRight(line, " ")
		if line == "" {
			continue
		}
		key, val := line, ""
		if i := strings.Index(line, " | "); i >= 0 {
			key, val = line[:i], line[i+3:]
		}
		if _, dup := vals[key]; !dup {
			keys = append(keys, key)
		}
		vals[key] = val
	}
	return keys, vals
}

// Diff compares two outcome reports line by line, matching lines on the
// key left of " | ". The result is deterministic: ordering follows the
// reports themselves, never map iteration.
func Diff(labelA, reportA, labelB, reportB string) *DiffReport {
	d := &DiffReport{LabelA: labelA, LabelB: labelB}
	keysA, valsA := parseOutcome(reportA)
	keysB, valsB := parseOutcome(reportB)
	for _, k := range keysA {
		vb, ok := valsB[k]
		if !ok {
			d.OnlyA = append(d.OnlyA, k)
			continue
		}
		if va := valsA[k]; va != vb {
			d.Changed = append(d.Changed, DiffLine{Key: k, A: va, B: vb})
		}
	}
	for _, k := range keysB {
		if _, ok := valsA[k]; !ok {
			d.OnlyB = append(d.OnlyB, k)
		}
	}
	return d
}
