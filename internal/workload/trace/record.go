package trace

import (
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// Recorder captures the exact injection schedule flowing through a
// workload sink. It interposes transparently: WrapSink returns a sink that
// records each arrival and forwards it unchanged, so any workload.Source
// (or hand-driven injection loop) can be recorded without modification.
//
// Recording is allocation-free per packet apart from the amortized growth
// of the event slice — BenchmarkPacketPathRecorded pins the packet path at
// 0 allocs/op with a recorder attached.
type Recorder struct {
	engine *sim.Engine
	t0     sim.Time
	events []Event
	header Header
}

// NewRecorder starts a recording at the engine's current virtual time;
// all event offsets are relative to this instant.
func NewRecorder(engine *sim.Engine) *Recorder {
	return &Recorder{engine: engine, t0: engine.Now()}
}

// SetMeta fills the descriptive header fields (seed, cluster width, note)
// stored alongside the schedule.
func (r *Recorder) SetMeta(seed uint64, nodes int, note string) {
	r.header.Seed = seed
	r.header.Nodes = nodes
	r.header.Note = note
}

// Record appends one injection observed now, with an optional node/pod
// target (-1 for unassigned).
func (r *Recorder) Record(f workload.Flow, bytes, node, pod int) {
	r.events = append(r.events, Event{
		At:    r.engine.Now().Sub(r.t0),
		Flow:  f,
		Bytes: bytes,
		Node:  node,
		Pod:   pod,
	})
}

// WrapSink returns a sink that records each arrival (unassigned target)
// and forwards it to inner.
func (r *Recorder) WrapSink(inner func(workload.Flow, int)) func(workload.Flow, int) {
	return func(f workload.Flow, bytes int) {
		r.Record(f, bytes, -1, -1)
		inner(f, bytes)
	}
}

// Events returns the number of injections recorded so far.
func (r *Recorder) Events() int { return len(r.events) }

// Trace finalizes the recording into a serializable Trace. The recorder
// may keep recording; later Trace calls include the additional events.
func (r *Recorder) Trace() *Trace {
	t := &Trace{
		Header: r.header,
		Events: append([]Event(nil), r.events...),
	}
	t.finalizeHeader()
	return t
}
