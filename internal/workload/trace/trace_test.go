package trace_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/packet"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// sampleTrace builds a small hand-made schedule covering the field ranges
// the record encoding has to carry: target assignments and the -1
// sentinel, zero offsets, repeated timestamps.
func sampleTrace() *trace.Trace {
	flows := workload.GenerateFlows(5, 3, 42)
	t := &trace.Trace{Header: trace.Header{Note: "unit", Seed: 42, Nodes: 3}}
	at := []sim.Duration{0, 10, 10, 250, 4000}
	for i, f := range flows {
		t.Events = append(t.Events, trace.Event{
			At:    at[i],
			Flow:  f,
			Bytes: 64 + i,
			Node:  i%3 - 1, // exercises -1 and real indices
			Pod:   0,
		})
	}
	return t
}

// TestTraceRoundTrip pins the wire format: write → read must reproduce the
// events exactly and stamp the derived header fields.
func TestTraceRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Fatalf("events differ after round trip:\n got %+v\nwant %+v", got.Events, orig.Events)
	}
	if got.Header.Version != trace.Version || got.Header.Events != len(orig.Events) {
		t.Fatalf("header not stamped: %+v", got.Header)
	}
	if got.Header.DurationNS != int64(orig.Span()) {
		t.Fatalf("duration %d != span %d", got.Header.DurationNS, orig.Span())
	}
	// A second serialization of the decoded trace is byte-identical: the
	// format has one canonical encoding.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization is not byte-identical")
	}
}

// TestTraceFileSidecar pins WriteFile's artifact pair: the binary loads
// back, and the JSON sidecar exists next to it.
func TestTraceFileSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.trace")
	orig := sampleTrace()
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Fatal("events differ after file round trip")
	}
	side, err := trace.ReadSidecar(path + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if side.Events != len(orig.Events) || side.Seed != 42 {
		t.Fatalf("sidecar header %+v does not match trace", side)
	}
}

// TestTraceRejectsCorruption spot-checks the validation the fuzz harness
// explores: truncation, bad magic, version skew, checksum damage — each
// must fail with ErrBadTrace (and the errs.BadConfig sentinel).
func TestTraceRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":         {},
		"short magic":   good[:3],
		"short header":  good[:14],
		"truncated rec": good[:len(good)-7],
	}
	badMagic := bytes.Clone(good)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	badVer := bytes.Clone(good)
	badVer[4] = 99
	cases["bad version"] = badVer
	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0xff
	cases["checksum"] = flipped

	for name, data := range cases {
		if _, err := trace.Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		} else if !errors.Is(err, trace.ErrBadTrace) || !errors.Is(err, errs.BadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadTrace/errs.BadConfig", name, err)
		}
	}
}

// TestRecordReplayMetricsByteIdentical is the tentpole contract at node
// scope: record a live run through a wrapped sink, replay the trace into a
// freshly built identical node, and require the full metrics exports —
// Prometheus text and JSON — to match byte for byte.
func TestRecordReplayMetricsByteIdentical(t *testing.T) {
	build := func() (*core.Node, *core.PodRuntime) {
		n, err := core.NewNode(core.NodeConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		flows := workload.GenerateFlows(500, 20, 7)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			Flows: workload.ServiceFlows(flows, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, pr
	}

	flows := workload.GenerateFlows(500, 20, 7)
	n1, p1 := build()
	rec := trace.NewRecorder(n1.Engine)
	src, err := workload.New(
		workload.WithFlows(flows),
		workload.WithRate(workload.ConstantRate(4e5)),
		workload.WithSeed(99),
		workload.WithSink(rec.WrapSink(p1.Sink())),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Start(n1.Engine); err != nil {
		t.Fatal(err)
	}
	n1.RunFor(20 * sim.Millisecond)
	src.Stop()
	n1.RunFor(5 * sim.Millisecond)

	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events() == 0 || len(tr.Events) != rec.Events() {
		t.Fatalf("recorded %d events, decoded %d", rec.Events(), len(tr.Events))
	}

	n2, p2 := build()
	rp, err := trace.Replay(n2.Engine, tr, p2.Sink())
	if err != nil {
		t.Fatal(err)
	}
	n2.RunFor(25 * sim.Millisecond)
	if !rp.Done() || rp.Injected != uint64(len(tr.Events)) {
		t.Fatalf("replay incomplete: injected %d of %d", rp.Injected, len(tr.Events))
	}

	prom1, prom2 := n1.Metrics().Prometheus(), n2.Metrics().Prometheus()
	if prom1 != prom2 {
		t.Fatal("Prometheus exports differ between recorded run and replay")
	}
	j1, err := n1.Metrics().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := n2.Metrics().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("JSON exports differ between recorded run and replay")
	}
}

// TestFromPcap pins the pcap → trace import: VXLAN frames written by the
// repo's own pcap writer come back as events with the inner tenant flow,
// and non-flow frames are counted as skipped, not dropped silently.
func TestFromPcap(t *testing.T) {
	var buf bytes.Buffer
	pw := packet.NewPcapWriter(&buf, 0)
	b := packet.NewBuilder(512)
	specs := []struct {
		vni   uint32
		sport uint16
		at    time.Duration
	}{
		{100, 1111, 0},
		{200, 2222, 150 * time.Microsecond},
		{100, 3333, 900 * time.Microsecond},
	}
	for _, s := range specs {
		frame := packet.BuildVXLANPacket(b, &packet.VXLANSpec{
			OuterSrc:   packet.IPv4FromUint32(0x0a000001),
			OuterDst:   packet.IPv4FromUint32(0x0a000002),
			VNI:        s.vni,
			InnerSrc:   packet.IPv4FromUint32(0x0b000001),
			InnerDst:   packet.IPv4FromUint32(0x0c000001),
			InnerProto: packet.IPProtocolTCP,
			InnerSPort: s.sport,
			InnerDPort: 443,
			PayloadLen: 32,
		})
		if err := pw.WritePacket(s.at, frame); err != nil {
			t.Fatal(err)
		}
	}
	// One frame that is not parseable as a flow.
	if err := pw.WritePacket(time.Millisecond, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	tr, skipped, err := trace.FromPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d frames, want 1", skipped)
	}
	if len(tr.Events) != len(specs) {
		t.Fatalf("imported %d events, want %d", len(tr.Events), len(specs))
	}
	for i, s := range specs {
		ev := tr.Events[i]
		if ev.Flow.VNI != s.vni || ev.Flow.Tuple.SPort != s.sport {
			t.Fatalf("event %d: flow %+v does not match spec %+v", i, ev.Flow, s)
		}
		if ev.At != sim.Duration(s.at) {
			t.Fatalf("event %d at %d, want %d", i, ev.At, sim.Duration(s.at))
		}
		if ev.Node != -1 || ev.Pod != -1 {
			t.Fatalf("event %d carries a target %d/%d, want unassigned", i, ev.Node, ev.Pod)
		}
	}
	if tr.Header.Flows != 3 {
		t.Fatalf("header flows %d, want 3", tr.Header.Flows)
	}
}
