// Package trace records, persists, replays, and diffs cluster workload
// schedules — the record → save → replay → diff loop behind gameday
// drills. A Recorder wraps any workload sink and captures the exact
// injection schedule (virtual timestamp, flow key, VNI, size, node/pod
// target); the Trace serializes to a compact versioned binary artifact
// with an embedded (and sidecar) JSON header; a Replayer drives any sink
// — typically a whole cluster ingress — from the saved schedule with the
// same one-ahead event insertion discipline a live Source uses; Diff
// compares the keyed outcome reports of two replays line by line.
//
// File layout (little-endian):
//
//	[0:4)   magic "ALBT"
//	[4:6)   format version (currently 1)
//	[6:8)   reserved, zero
//	[8:12)  JSON header length H
//	[12:12+H) JSON header (the same document the .json sidecar holds)
//	[..+8)  record count N
//	[..+8)  FNV-1a 64 checksum of the N*32 record bytes
//	[..N*32) fixed 32-byte records
//
// Record layout: ts-offset ns u64 | src u32 | dst u32 | vni u32 |
// bytes u32 | sport u16 | dport u16 | proto u8 | node u8 | pod u8 | pad.
// Node and pod use 0xff for "unassigned" (recorded off-cluster).
package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"time"

	"albatross/internal/errs"
	"albatross/internal/packet"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// Version is the current trace format version.
const Version = 1

var magic = [4]byte{'A', 'L', 'B', 'T'}

const (
	recordBytes = 32
	// maxHeaderBytes bounds the embedded JSON header so a corrupt length
	// field cannot drive a huge allocation.
	maxHeaderBytes = 1 << 20
	// noTarget marks an event recorded without a node/pod assignment.
	noTarget = 0xff
)

// ErrBadTrace reports a malformed, truncated, or version-incompatible
// trace artifact. It wraps errs.BadConfig so the facade sentinel contract
// (errors.Is(err, albatross.ErrBadConfig)) holds for trace input too.
var ErrBadTrace = fmt.Errorf("trace: malformed trace: %w", errs.BadConfig)

// Header is the human-readable trace metadata. It is embedded in the
// binary artifact and duplicated into a ".json" sidecar by WriteFile.
type Header struct {
	// Version mirrors the binary format version.
	Version int `json:"version"`
	// Note is free-form operator context ("prod incident 2024-11-02").
	Note string `json:"note,omitempty"`
	// Seed is the RNG seed of the recorded run, if any.
	Seed uint64 `json:"seed,omitempty"`
	// Nodes is the cluster width the schedule was recorded against
	// (0 = single node or unknown).
	Nodes int `json:"nodes,omitempty"`
	// Flows counts the distinct flows appearing in the schedule.
	Flows int `json:"flows,omitempty"`
	// Events counts schedule records (mirrors the binary count).
	Events int `json:"events"`
	// DurationNS is the offset of the last event from the first.
	DurationNS int64 `json:"duration_ns"`
}

// Event is one recorded injection.
type Event struct {
	// At is the virtual-time offset from the start of the recording.
	At sim.Duration
	// Flow is the injected tenant flow.
	Flow workload.Flow
	// Bytes is the injected wire size.
	Bytes int
	// Node is the ECMP owner observed at record time, -1 if unassigned.
	Node int
	// Pod is the target pod slot, -1 if unassigned.
	Pod int
}

// Trace is an in-memory schedule: a header plus its ordered events.
type Trace struct {
	Header Header
	Events []Event
}

// Validate checks the semantic invariants replay depends on: events in
// non-decreasing time order, non-negative offsets, positive sizes. All
// violations wrap ErrBadTrace.
func (t *Trace) Validate() error {
	var prev sim.Duration
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.At < 0 {
			return fmt.Errorf("event %d at negative offset %d: %w", i, ev.At, ErrBadTrace)
		}
		if ev.At < prev {
			return fmt.Errorf("event %d at %d before predecessor %d: %w", i, ev.At, prev, ErrBadTrace)
		}
		prev = ev.At
		if ev.Bytes <= 0 {
			return fmt.Errorf("event %d has non-positive size %d: %w", i, ev.Bytes, ErrBadTrace)
		}
	}
	return nil
}

// Span returns the offset of the last event (the schedule length).
func (t *Trace) Span() sim.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Flows returns the distinct flows of the schedule in first-appearance
// order — the set a replay target needs installed in its service tables
// when the original deployment config is not available.
func (t *Trace) Flows() []workload.Flow {
	seen := make(map[uint64]struct{}, len(t.Events))
	var flows []workload.Flow
	for i := range t.Events {
		f := t.Events[i].Flow
		key := uint64(f.VNI)<<32 ^ uint64(f.Tuple.Hash())
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		flows = append(flows, f)
	}
	return flows
}

// finalizeHeader stamps the derived header fields before serialization.
func (t *Trace) finalizeHeader() {
	t.Header.Version = Version
	t.Header.Events = len(t.Events)
	t.Header.DurationNS = int64(t.Span())
	if t.Header.Flows == 0 {
		t.Header.Flows = len(t.Flows())
	}
}

func encodeTarget(v int) byte {
	if v < 0 || v >= noTarget {
		return noTarget
	}
	return byte(v)
}

func decodeTarget(b byte) int {
	if b == noTarget {
		return -1
	}
	return int(b)
}

// Write serializes the trace. The header's derived fields (Version,
// Events, DurationNS, Flows) are stamped first, so the artifact is always
// self-consistent.
func (t *Trace) Write(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	t.finalizeHeader()
	hdr, err := json.Marshal(&t.Header)
	if err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	if len(hdr) > maxHeaderBytes {
		return fmt.Errorf("trace: header %dB exceeds %dB cap: %w", len(hdr), maxHeaderBytes, ErrBadTrace)
	}

	records := make([]byte, len(t.Events)*recordBytes)
	for i := range t.Events {
		ev := &t.Events[i]
		r := records[i*recordBytes:]
		binary.LittleEndian.PutUint64(r[0:], uint64(ev.At))
		binary.LittleEndian.PutUint32(r[8:], ev.Flow.Tuple.Src.Uint32())
		binary.LittleEndian.PutUint32(r[12:], ev.Flow.Tuple.Dst.Uint32())
		binary.LittleEndian.PutUint32(r[16:], ev.Flow.VNI)
		binary.LittleEndian.PutUint32(r[20:], uint32(ev.Bytes))
		binary.LittleEndian.PutUint16(r[24:], ev.Flow.Tuple.SPort)
		binary.LittleEndian.PutUint16(r[26:], ev.Flow.Tuple.DPort)
		r[28] = byte(ev.Flow.Tuple.Proto)
		r[29] = encodeTarget(ev.Node)
		r[30] = encodeTarget(ev.Pod)
		r[31] = 0
	}
	sum := fnv.New64a()
	sum.Write(records)

	fixed := make([]byte, 12)
	copy(fixed, magic[:])
	binary.LittleEndian.PutUint16(fixed[4:], Version)
	binary.LittleEndian.PutUint32(fixed[8:], uint32(len(hdr)))
	tail := make([]byte, 16)
	binary.LittleEndian.PutUint64(tail[0:], uint64(len(t.Events)))
	binary.LittleEndian.PutUint64(tail[8:], sum.Sum64())

	for _, chunk := range [][]byte{fixed, hdr, tail, records} {
		if _, err := w.Write(chunk); err != nil {
			return fmt.Errorf("trace: writing: %w", err)
		}
	}
	return nil
}

// Read deserializes a trace, verifying magic, version, structure, and the
// record checksum. Every malformation — including truncation — is
// reported as an error wrapping ErrBadTrace (and therefore errs.BadConfig).
func Read(r io.Reader) (*Trace, error) {
	fixed := make([]byte, 12)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, fmt.Errorf("trace: short preamble: %w", ErrBadTrace)
	}
	if [4]byte(fixed[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q: %w", fixed[:4], ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint16(fixed[4:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d): %w", v, Version, ErrBadTrace)
	}
	if binary.LittleEndian.Uint16(fixed[6:]) != 0 {
		return nil, fmt.Errorf("trace: nonzero reserved field: %w", ErrBadTrace)
	}
	hlen := binary.LittleEndian.Uint32(fixed[8:])
	if hlen > maxHeaderBytes {
		return nil, fmt.Errorf("trace: header length %d exceeds %d cap: %w", hlen, maxHeaderBytes, ErrBadTrace)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", ErrBadTrace)
	}
	t := &Trace{}
	if err := json.Unmarshal(hdr, &t.Header); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %v: %w", err, ErrBadTrace)
	}
	if t.Header.Version != Version {
		return nil, fmt.Errorf("trace: header version %d disagrees with format version %d: %w",
			t.Header.Version, Version, ErrBadTrace)
	}

	tail := make([]byte, 16)
	if _, err := io.ReadFull(r, tail); err != nil {
		return nil, fmt.Errorf("trace: truncated count/checksum: %w", ErrBadTrace)
	}
	count := binary.LittleEndian.Uint64(tail[0:])
	want := binary.LittleEndian.Uint64(tail[8:])
	if count != uint64(t.Header.Events) {
		return nil, fmt.Errorf("trace: binary count %d disagrees with header events %d: %w",
			count, t.Header.Events, ErrBadTrace)
	}
	const maxRecords = 1 << 28 // 256M events ~ 8GB decoded; far past any real trace
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds %d cap: %w", count, uint64(maxRecords), ErrBadTrace)
	}

	records := make([]byte, int(count)*recordBytes)
	if _, err := io.ReadFull(r, records); err != nil {
		return nil, fmt.Errorf("trace: truncated records: %w", ErrBadTrace)
	}
	sum := fnv.New64a()
	sum.Write(records)
	if got := sum.Sum64(); got != want {
		return nil, fmt.Errorf("trace: record checksum %#x != stored %#x: %w", got, want, ErrBadTrace)
	}

	t.Events = make([]Event, count)
	for i := range t.Events {
		rec := records[i*recordBytes:]
		ev := &t.Events[i]
		ev.At = sim.Duration(binary.LittleEndian.Uint64(rec[0:]))
		ev.Flow.Tuple.Src = packet.IPv4FromUint32(binary.LittleEndian.Uint32(rec[8:]))
		ev.Flow.Tuple.Dst = packet.IPv4FromUint32(binary.LittleEndian.Uint32(rec[12:]))
		ev.Flow.VNI = binary.LittleEndian.Uint32(rec[16:])
		ev.Bytes = int(binary.LittleEndian.Uint32(rec[20:]))
		ev.Flow.Tuple.SPort = binary.LittleEndian.Uint16(rec[24:])
		ev.Flow.Tuple.DPort = binary.LittleEndian.Uint16(rec[26:])
		ev.Flow.Tuple.Proto = packet.IPProtocol(rec[28])
		ev.Node = decodeTarget(rec[29])
		ev.Pod = decodeTarget(rec[30])
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile saves the binary artifact at path and its JSON header as a
// human-readable sidecar at path+".json".
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sidecar, err := json.MarshalIndent(&t.Header, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding sidecar: %w", err)
	}
	return os.WriteFile(path+".json", append(sidecar, '\n'), 0o644)
}

// ReadFile loads a trace artifact saved by WriteFile.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadSidecar loads the JSON header sidecar written by WriteFile. It lets
// tooling inspect a trace's metadata without decoding the record stream.
func ReadSidecar(path string) (Header, error) {
	var h Header
	data, err := os.ReadFile(path)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return h, fmt.Errorf("trace: decoding sidecar: %w", ErrBadTrace)
	}
	return h, nil
}

// FromPcap ingests a libpcap capture into a trace: each frame that decodes
// to an IPv4 tenant flow becomes an event at its capture-relative
// timestamp; undecodable frames are counted in skipped. The import path
// turns real production captures (or albatross-sim -pcap output) into
// replayable schedules.
func FromPcap(r io.Reader) (t *Trace, skipped int, err error) {
	pr, err := packet.NewPcapReader(r)
	if err != nil {
		return nil, 0, err
	}
	pkts, err := pr.ReadAll()
	if err != nil {
		return nil, 0, err
	}
	t = &Trace{Header: Header{Note: "imported from pcap"}}
	var parsed packet.Parsed
	var base time.Duration
	for i, p := range pkts {
		if i == 0 {
			base = p.TS
		}
		tuple, vni, ok := packet.ExtractFlow(p.Data, &parsed)
		if !ok {
			skipped++
			continue
		}
		t.Events = append(t.Events, Event{
			At:    sim.Duration(p.TS - base),
			Flow:  workload.Flow{Tuple: tuple, VNI: vni},
			Bytes: p.OrigLen,
			Node:  -1,
			Pod:   -1,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, skipped, err
	}
	t.finalizeHeader()
	return t, skipped, nil
}
