package workload

import (
	"bytes"
	"testing"
	"time"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// buildCapture writes n VXLAN frames spaced 1µs apart.
func buildCapture(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := packet.NewPcapWriter(&buf, 0)
	b := packet.NewBuilder(512)
	for i := 0; i < n; i++ {
		frame := packet.BuildVXLANPacket(b, &packet.VXLANSpec{
			OuterSrc: packet.IPv4Addr{100, 64, 0, 1}, OuterDst: packet.IPv4Addr{100, 64, 0, 2},
			OuterSrcPort: uint16(40000 + i),
			VNI:          uint32(100 + i%3),
			InnerSrc:     packet.IPv4FromUint32(0x0a000000 + uint32(i)),
			InnerDst:     packet.IPv4Addr{8, 8, 8, 8},
			InnerProto:   packet.IPProtocolTCP,
			InnerSPort:   uint16(10000 + i), InnerDPort: 443,
			PayloadLen: 64,
		})
		if err := w.WritePacket(time.Duration(i)*time.Microsecond, frame); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func TestReplayBasics(t *testing.T) {
	cap := buildCapture(t, 10)
	e := sim.NewEngine()
	var got []Flow
	var times []sim.Time
	rs := &ReplaySource{Sink: func(f Flow, bytes int) {
		got = append(got, f)
		times = append(times, e.Now())
		if bytes <= 0 {
			t.Fatal("bad byte count")
		}
	}}
	if err := rs.Start(e, cap); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(got) != 10 || rs.Replayed != 10 || rs.Skipped != 0 {
		t.Fatalf("replayed %d skipped %d", rs.Replayed, rs.Skipped)
	}
	// Timing preserved: 1µs spacing.
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != sim.Time(sim.Microsecond) {
			t.Fatalf("spacing %v at %d", times[i]-times[i-1], i)
		}
	}
	// Flows parsed from the inner headers.
	if got[0].VNI != 100 || got[1].VNI != 101 {
		t.Fatalf("VNIs = %d, %d", got[0].VNI, got[1].VNI)
	}
	if got[0].Tuple.DPort != 443 || got[0].Tuple.Proto != packet.IPProtocolTCP {
		t.Fatalf("tuple = %v", got[0].Tuple)
	}
}

func TestReplaySpeedup(t *testing.T) {
	cap := buildCapture(t, 5)
	e := sim.NewEngine()
	var last sim.Time
	rs := &ReplaySource{Speedup: 2, Sink: func(Flow, int) { last = e.Now() }}
	if err := rs.Start(e, cap); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// 4µs span at 2x => 2µs.
	if last != sim.Time(2*sim.Microsecond) {
		t.Fatalf("last replay at %v, want 2µs", last)
	}
}

func TestReplayLoop(t *testing.T) {
	cap := buildCapture(t, 3)
	e := sim.NewEngine()
	n := 0
	rs := &ReplaySource{Loop: 4, Sink: func(Flow, int) { n++ }}
	if err := rs.Start(e, cap); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if n != 12 || rs.Replayed != 12 {
		t.Fatalf("replayed %d, want 12", n)
	}
}

func TestReplayValidation(t *testing.T) {
	e := sim.NewEngine()
	if err := (&ReplaySource{}).Start(e, &bytes.Buffer{}); err == nil {
		t.Fatal("no sink accepted")
	}
	rs := &ReplaySource{Sink: func(Flow, int) {}}
	if err := rs.Start(e, bytes.NewReader([]byte("junk junk junk junk junk"))); err == nil {
		t.Fatal("junk capture accepted")
	}
	// Valid pcap with zero packets.
	var empty bytes.Buffer
	w := packet.NewPcapWriter(&empty, 0)
	w.WritePacket(0, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	// One non-parseable frame: Start succeeds but skips it.
	if err := rs.Start(e, &empty); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if rs.Skipped == 0 {
		t.Fatal("unparseable frame not skipped")
	}
}

func TestReplayIntoNode(t *testing.T) {
	// End to end: capture -> replay -> flows look like generated ones.
	cap := buildCapture(t, 50)
	e := sim.NewEngine()
	seen := map[uint32]int{}
	rs := &ReplaySource{Sink: func(f Flow, _ int) { seen[f.VNI]++ }}
	if err := rs.Start(e, cap); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(seen) != 3 {
		t.Fatalf("tenants = %v", seen)
	}
}
