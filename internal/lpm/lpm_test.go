package lpm

import (
	"testing"
	"testing/quick"

	"albatross/internal/sim"
)

func mustInsert(t testing.TB, tbl *Table, prefix uint32, plen int, val uint32) {
	t.Helper()
	if err := tbl.Insert(prefix, plen, val); err != nil {
		t.Fatalf("Insert(%s, %d): %v", PrefixString(prefix, plen), val, err)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := New()
	if v, ok := tbl.Lookup(0x0a000001); ok || v != NoRoute {
		t.Fatalf("lookup on empty table = %v, %v", v, ok)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestBasicLongestMatch(t *testing.T) {
	tbl := New()
	mustInsert(t, tbl, 0x0a000000, 8, 100)  // 10/8
	mustInsert(t, tbl, 0x0a010000, 16, 200) // 10.1/16
	mustInsert(t, tbl, 0x0a010100, 24, 300) // 10.1.1/24
	mustInsert(t, tbl, 0x0a010101, 32, 400) // 10.1.1.1/32

	cases := []struct {
		addr uint32
		want uint32
	}{
		{0x0a010101, 400}, // exact /32
		{0x0a010102, 300}, // /24
		{0x0a010201, 200}, // /16
		{0x0a020101, 100}, // /8
		{0x0b000001, NoRoute},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(c.addr)
		if c.want == NoRoute {
			if ok {
				t.Errorf("lookup %08x = %d, want miss", c.addr, got)
			}
			continue
		}
		if !ok || got != c.want {
			t.Errorf("lookup %08x = %d (%v), want %d", c.addr, got, ok, c.want)
		}
	}
	if tbl.Len() != 4 {
		t.Fatalf("len = %d, want 4", tbl.Len())
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := New()
	mustInsert(t, tbl, 0, 0, 7)
	if v, ok := tbl.Lookup(0xdeadbeef); !ok || v != 7 {
		t.Fatalf("default route lookup = %d, %v", v, ok)
	}
	mustInsert(t, tbl, 0x0a000000, 8, 9)
	if v, _ := tbl.Lookup(0x0a000001); v != 9 {
		t.Fatalf("more-specific should win: %d", v)
	}
	if !tbl.Delete(0, 0) {
		t.Fatal("delete default failed")
	}
	if _, ok := tbl.Lookup(0xdeadbeef); ok {
		t.Fatal("default still matching after delete")
	}
}

func TestNonOctetAlignedPrefixes(t *testing.T) {
	tbl := New()
	// /22 and /30: partial-stride expansion paths.
	mustInsert(t, tbl, 0xc0a80400, 22, 1) // 192.168.4.0/22 covers .4-.7
	mustInsert(t, tbl, 0xc0a80600, 23, 2) // 192.168.6.0/23 covers .6-.7
	mustInsert(t, tbl, 0xc0a80630, 30, 3) // 192.168.6.48/30

	if v, _ := tbl.Lookup(0xc0a80401); v != 1 {
		t.Fatalf(".4.1 = %d, want 1", v)
	}
	if v, _ := tbl.Lookup(0xc0a80501); v != 1 {
		t.Fatalf(".5.1 = %d, want 1", v)
	}
	if v, _ := tbl.Lookup(0xc0a80601); v != 2 {
		t.Fatalf(".6.1 = %d, want 2", v)
	}
	if v, _ := tbl.Lookup(0xc0a80701); v != 2 {
		t.Fatalf(".7.1 = %d, want 2", v)
	}
	if v, _ := tbl.Lookup(0xc0a80631); v != 3 {
		t.Fatalf(".6.49 = %d, want 3", v)
	}
	if v, _ := tbl.Lookup(0xc0a80634); v != 2 {
		t.Fatalf(".6.52 = %d, want 2 (outside /30)", v)
	}
	if _, ok := tbl.Lookup(0xc0a80801); ok {
		t.Fatal(".8.1 should miss")
	}
}

func TestInsertReplace(t *testing.T) {
	tbl := New()
	mustInsert(t, tbl, 0x0a000000, 8, 1)
	mustInsert(t, tbl, 0x0a000000, 8, 2)
	if tbl.Len() != 1 {
		t.Fatalf("len after replace = %d", tbl.Len())
	}
	if v, _ := tbl.Lookup(0x0a123456); v != 2 {
		t.Fatalf("value after replace = %d", v)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := New()
	if err := tbl.Insert(0x0a000001, 8, 1); err == nil {
		t.Fatal("non-canonical prefix accepted")
	}
	if err := tbl.Insert(0, 33, 1); err == nil {
		t.Fatal("plen 33 accepted")
	}
	if err := tbl.Insert(0, -1, 1); err == nil {
		t.Fatal("negative plen accepted")
	}
	if err := tbl.Insert(0x0a000000, 8, NoRoute); err == nil {
		t.Fatal("NoRoute sentinel accepted")
	}
	if err := tbl.Insert(1, 0, 1); err == nil {
		t.Fatal("nonzero default prefix accepted")
	}
}

func TestDeleteRestoresCover(t *testing.T) {
	tbl := New()
	mustInsert(t, tbl, 0x0a000000, 8, 100)
	mustInsert(t, tbl, 0x0a010000, 16, 200)
	if !tbl.Delete(0x0a010000, 16) {
		t.Fatal("delete failed")
	}
	if v, _ := tbl.Lookup(0x0a010001); v != 100 {
		t.Fatalf("after delete, lookup = %d, want covering /8 value 100", v)
	}
	if tbl.Delete(0x0a010000, 16) {
		t.Fatal("double delete succeeded")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestDeleteRestoresWithinStride(t *testing.T) {
	tbl := New()
	// Both in the same root stride: /6 covers /7.
	mustInsert(t, tbl, 0x08000000, 6, 6) // 8.0.0.0/6
	mustInsert(t, tbl, 0x0a000000, 7, 7) // 10.0.0.0/7
	if v, _ := tbl.Lookup(0x0a000001); v != 7 {
		t.Fatalf("pre-delete = %d", v)
	}
	tbl.Delete(0x0a000000, 7)
	if v, _ := tbl.Lookup(0x0a000001); v != 6 {
		t.Fatalf("post-delete = %d, want /6 value", v)
	}
	if v, _ := tbl.Lookup(0x09000001); v != 6 {
		t.Fatalf("sibling = %d, want 6", v)
	}
}

func TestDeletePreservesLongerRoutes(t *testing.T) {
	tbl := New()
	mustInsert(t, tbl, 0x0a000000, 8, 8)
	mustInsert(t, tbl, 0x0a010000, 16, 16)
	tbl.Delete(0x0a000000, 8)
	if v, _ := tbl.Lookup(0x0a010001); v != 16 {
		t.Fatalf("longer route lost: %d", v)
	}
	if _, ok := tbl.Lookup(0x0a020001); ok {
		t.Fatal("deleted /8 still matches")
	}
}

func TestDeletePrunesNodes(t *testing.T) {
	tbl := New()
	base := tbl.NodeCount()
	mustInsert(t, tbl, 0x0a010101, 32, 1)
	if tbl.NodeCount() != base+3 {
		t.Fatalf("nodes = %d, want %d", tbl.NodeCount(), base+3)
	}
	tbl.Delete(0x0a010101, 32)
	if tbl.NodeCount() != base {
		t.Fatalf("nodes after delete = %d, want %d", tbl.NodeCount(), base)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	tbl := New()
	if tbl.Delete(0x0a000000, 8) {
		t.Fatal("delete on empty table succeeded")
	}
	mustInsert(t, tbl, 0x0a000000, 8, 1)
	if tbl.Delete(0x0a000000, 9) {
		t.Fatal("delete of absent plen succeeded")
	}
	if tbl.Delete(0x0b000000, 8) {
		t.Fatal("delete of absent prefix succeeded")
	}
}

func TestWalk(t *testing.T) {
	tbl := New()
	routes := map[string]uint32{}
	ins := func(p uint32, l int, v uint32) {
		mustInsert(t, tbl, p, l, v)
		routes[PrefixString(p, l)] = v
	}
	ins(0, 0, 1)
	ins(0x0a000000, 8, 2)
	ins(0x0a014000, 18, 3)
	ins(0x0a010101, 32, 4)
	got := map[string]uint32{}
	tbl.Walk(func(p uint32, l int, v uint32) bool {
		got[PrefixString(p, l)] = v
		return true
	})
	if len(got) != len(routes) {
		t.Fatalf("walk visited %d routes, want %d: %v", len(got), len(routes), got)
	}
	for k, v := range routes {
		if got[k] != v {
			t.Errorf("route %s = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tbl.Walk(func(uint32, int, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMaskAndCanonical(t *testing.T) {
	if Mask(0) != 0 || Mask(8) != 0xff000000 || Mask(32) != 0xffffffff {
		t.Fatal("mask values wrong")
	}
	if Canonical(0x0a0b0c0d, 16) != 0x0a0b0000 {
		t.Fatal("canonical wrong")
	}
	if CommonPrefixLen(0x80000000, 0) != 0 {
		t.Fatal("cpl wrong")
	}
	if CommonPrefixLen(0x0a000000, 0x0a000001) != 31 {
		t.Fatal("cpl 31 wrong")
	}
}

// referenceLPM is a brute-force oracle: linear scan over all routes.
type referenceLPM struct {
	routes map[[2]uint32]uint32 // [prefix, plen] -> val
}

func (r *referenceLPM) lookup(addr uint32) (uint32, bool) {
	bestLen := -1
	var bestVal uint32
	for k, v := range r.routes {
		p, l := k[0], int(k[1])
		if addr&Mask(l) == p && l > bestLen {
			bestLen = l
			bestVal = v
		}
	}
	return bestVal, bestLen >= 0
}

func TestAgainstReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		tbl := New()
		ref := &referenceLPM{routes: map[[2]uint32]uint32{}}
		// Random inserts and deletes.
		for op := 0; op < 300; op++ {
			plen := r.Intn(33)
			prefix := Canonical(r.Uint32(), plen)
			if plen == 0 {
				prefix = 0
			}
			if r.Float64() < 0.75 || len(ref.routes) == 0 {
				val := r.Uint32() % 1000000
				if err := tbl.Insert(prefix, plen, val); err != nil {
					return false
				}
				ref.routes[[2]uint32{prefix, uint32(plen)}] = val
			} else {
				// Delete a random existing route half the time.
				if r.Float64() < 0.5 {
					for k := range ref.routes {
						prefix, plen = k[0], int(k[1])
						break
					}
				}
				got := tbl.Delete(prefix, plen)
				_, want := ref.routes[[2]uint32{prefix, uint32(plen)}]
				if got != want {
					return false
				}
				delete(ref.routes, [2]uint32{prefix, uint32(plen)})
			}
		}
		if tbl.Len() != len(ref.routes) {
			return false
		}
		// Verify lookups against the oracle at random probes plus route
		// boundary addresses.
		for i := 0; i < 300; i++ {
			addr := r.Uint32()
			gv, gok := tbl.Lookup(addr)
			wv, wok := ref.lookup(addr)
			if gok != wok || (gok && gv != wv) {
				return false
			}
		}
		for k := range ref.routes {
			addr := k[0] // network address of each route
			gv, gok := tbl.Lookup(addr)
			wv, wok := ref.lookup(addr)
			if gok != wok || (gok && gv != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleClusteredRoutes(t *testing.T) {
	// A scaled-down version of the Tab. 6 capacity experiment: clustered
	// tenant routes (how VXLAN routing tables look in production).
	tbl := New()
	r := sim.NewRand(1)
	const subnets = 512
	const perSubnet = 200
	n := 0
	for s := 0; s < subnets; s++ {
		base := 0x0a000000 | uint32(s)<<8
		mustInsert(t, tbl, base, 24, uint32(s))
		n++
		for h := 0; h < perSubnet; h++ {
			host := base | uint32(1+r.Intn(254))
			if err := tbl.Insert(host, 32, uint32(s)*1000+uint32(h)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tbl.Len() < subnets {
		t.Fatalf("len = %d", tbl.Len())
	}
	// All /24 network addresses resolve.
	for s := 0; s < subnets; s++ {
		base := 0x0a000000 | uint32(s)<<8
		if v, ok := tbl.Lookup(base | 0xfe); !ok {
			t.Fatalf("subnet %d unreachable", s)
		} else if v >= subnets && v < 1000 {
			t.Fatalf("unexpected value %d", v)
		}
	}
	if tbl.MemoryBytes() <= 0 {
		t.Fatal("memory estimate not positive")
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := New()
	r := sim.NewRand(2)
	for i := 0; i < 100000; i++ {
		plen := 16 + r.Intn(17)
		if err := tbl.Insert(Canonical(r.Uint32(), plen), plen, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = r.Uint32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i&1023])
	}
}

func BenchmarkInsert(b *testing.B) {
	r := sim.NewRand(3)
	tbl := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plen := 16 + r.Intn(17)
		tbl.Insert(Canonical(r.Uint32(), plen), plen, uint32(i))
	}
}
