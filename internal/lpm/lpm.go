// Package lpm implements IPv4 longest-prefix matching for the gateway's
// VXLAN routing tables.
//
// Albatross's headline capacity claim (Tab. 6) is that DRAM-backed tables
// hold >10M LPM rules versus Sailfish's 0.2M SRAM-bound entries. This
// package provides the DRAM-style structure: a four-level stride-8 multibit
// trie with controlled prefix expansion inside each node. The trie is *not*
// leaf-pushed: a lookup walks at most four nodes, remembering the best match
// seen on the path, so inserts and deletes touch exactly one node and cost
// at most a 256-slot expansion.
package lpm

import (
	"fmt"
	"math/bits"
)

// NoRoute is returned by Lookup when no prefix matches.
const NoRoute = ^uint32(0)

const (
	stride    = 8
	slotCount = 1 << stride
	levels    = 32 / stride
)

// routeKey identifies a route terminating in a node: the canonical base
// slot of its expansion range and its prefix length.
type routeKey struct {
	base uint16
	plen int8
}

// node is one stride of the trie. vals/plens hold the controlled prefix
// expansion of routes terminating inside this stride; children (lazily
// allocated) descend to the next stride. rmap records the authoritative
// (route -> value) set for delete restoration.
type node struct {
	vals     [slotCount]uint32
	plens    [slotCount]int8 // prefix length of the stored route, -1 = none
	children *[slotCount]*node
	rmap     map[routeKey]uint32
}

func newNode() *node {
	n := &node{}
	for i := range n.plens {
		n.plens[i] = -1
		n.vals[i] = NoRoute
	}
	return n
}

// Table is an IPv4 LPM table. The zero value is not usable; call New.
type Table struct {
	root  *node
	count int
	nodes int
}

// New returns an empty LPM table.
func New() *Table {
	return &Table{root: newNode(), nodes: 1}
}

// Len returns the number of installed routes.
func (t *Table) Len() int { return t.count }

// NodeCount returns the number of allocated trie nodes (memory proxy).
func (t *Table) NodeCount() int { return t.nodes }

// MemoryBytes estimates resident memory of the trie structure.
func (t *Table) MemoryBytes() int64 {
	var walk func(n *node) int64
	walk = func(n *node) int64 {
		// vals (1KB) + plens (256B) + header/map overhead.
		size := int64(slotCount*4+slotCount+48) + int64(len(n.rmap))*16
		if n.children != nil {
			size += slotCount * 8
			for _, c := range n.children {
				if c != nil {
					size += walk(c)
				}
			}
		}
		return size
	}
	return walk(t.root)
}

func validate(prefix uint32, plen int) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("lpm: prefix length %d out of [0,32]", plen)
	}
	if plen < 32 && plen > 0 && prefix<<uint(plen) != 0 {
		return fmt.Errorf("lpm: prefix %08x has bits set beyond /%d", prefix, plen)
	}
	if plen == 0 && prefix != 0 {
		return fmt.Errorf("lpm: default route must have prefix 0, got %08x", prefix)
	}
	return nil
}

// Mask returns the network mask for a prefix length.
func Mask(plen int) uint32 {
	if plen <= 0 {
		return 0
	}
	return ^uint32(0) << uint(32-plen)
}

// Canonical masks an address to a prefix length (helper for callers holding
// host addresses).
func Canonical(addr uint32, plen int) uint32 { return addr & Mask(plen) }

// locate walks (creating if create is set) to the node owning prefix/plen
// and returns it plus the expansion base slot and span. The returned path
// holds the (parent, childIndex) steps taken, for pruning on delete.
func (t *Table) locate(prefix uint32, plen int, create bool) (n *node, base, span int, path []pathStep) {
	n = t.root
	level := 0
	for plen > (level+1)*stride {
		idx := byte(prefix >> uint(32-stride*(level+1)))
		if n.children == nil {
			if !create {
				return nil, 0, 0, nil
			}
			n.children = new([slotCount]*node)
		}
		if n.children[idx] == nil {
			if !create {
				return nil, 0, 0, nil
			}
			n.children[idx] = newNode()
			t.nodes++
		}
		path = append(path, pathStep{n, idx})
		n = n.children[idx]
		level++
	}
	r := plen - level*stride // bits of the prefix inside this stride, 0..8
	if r > 0 {
		base = int(byte(prefix>>uint(32-stride*(level+1)))) &^ (1<<(stride-r) - 1)
	}
	span = 1 << (stride - r)
	return n, base, span, path
}

type pathStep struct {
	n   *node
	idx byte
}

// Insert adds or replaces the route (prefix/plen -> val). prefix must be in
// canonical form (no bits beyond plen). val must not be NoRoute.
func (t *Table) Insert(prefix uint32, plen int, val uint32) error {
	if err := validate(prefix, plen); err != nil {
		return err
	}
	if val == NoRoute {
		return fmt.Errorf("lpm: value %#x is the NoRoute sentinel", val)
	}
	n, base, span, _ := t.locate(prefix, plen, true)
	for i := base; i < base+span; i++ {
		if n.plens[i] <= int8(plen) {
			n.plens[i] = int8(plen)
			n.vals[i] = val
		}
	}
	rk := routeKey{uint16(base), int8(plen)}
	if n.rmap == nil {
		n.rmap = make(map[routeKey]uint32)
	}
	if _, existed := n.rmap[rk]; !existed {
		t.count++
	}
	n.rmap[rk] = val
	return nil
}

// Lookup returns the value of the longest matching prefix for addr, or
// (NoRoute, false) when nothing matches.
func (t *Table) Lookup(addr uint32) (uint32, bool) {
	best := NoRoute
	n := t.root
	for level := 0; ; level++ {
		idx := byte(addr >> uint(32-stride*(level+1)))
		if n.plens[idx] >= 0 {
			best = n.vals[idx]
		}
		if n.children == nil || level == levels-1 {
			break
		}
		c := n.children[idx]
		if c == nil {
			break
		}
		n = c
	}
	return best, best != NoRoute
}

// Delete removes the route (prefix/plen). It reports whether the route was
// present.
func (t *Table) Delete(prefix uint32, plen int) bool {
	if validate(prefix, plen) != nil {
		return false
	}
	n, base, span, path := t.locate(prefix, plen, false)
	if n == nil || n.rmap == nil {
		return false
	}
	rk := routeKey{uint16(base), int8(plen)}
	if _, ok := n.rmap[rk]; !ok {
		return false
	}
	delete(n.rmap, rk)
	t.count--

	level := len(path)
	// Restore the expansion range to the next-best route terminating in
	// this node (longest plen' < plen whose range covers each slot).
	for i := base; i < base+span; i++ {
		if n.plens[i] != int8(plen) {
			continue // a longer route owns this slot; leave it
		}
		bestPlen := int8(-1)
		bestVal := NoRoute
		for cand, val := range n.rmap {
			if cand.plen >= int8(plen) || cand.plen <= bestPlen {
				continue
			}
			cr := int(cand.plen) - level*stride
			if cr < 0 {
				cr = 0
			}
			cspan := 1 << (stride - cr)
			if i >= int(cand.base) && i < int(cand.base)+cspan {
				bestPlen = cand.plen
				bestVal = val
			}
		}
		n.plens[i] = bestPlen
		n.vals[i] = bestVal
	}

	// Prune now-empty nodes up the path.
	for len(path) > 0 && len(n.rmap) == 0 && n.children == nil {
		last := path[len(path)-1]
		last.n.children[last.idx] = nil
		t.nodes--
		path = path[:len(path)-1]
		n = last.n
		empty := true
		for _, c := range n.children {
			if c != nil {
				empty = false
				break
			}
		}
		if empty {
			n.children = nil
		}
	}
	return true
}

// Walk visits every installed route in unspecified order. Return false from
// fn to stop early.
func (t *Table) Walk(fn func(prefix uint32, plen int, val uint32) bool) {
	var walk func(n *node, acc uint32, level int) bool
	walk = func(n *node, acc uint32, level int) bool {
		for rk, val := range n.rmap {
			p := acc
			if int(rk.plen) > level*stride {
				p |= uint32(rk.base) << uint(32-stride*(level+1))
			}
			if !fn(p, int(rk.plen), val) {
				return false
			}
		}
		if n.children != nil {
			for i, c := range n.children {
				if c == nil {
					continue
				}
				childAcc := acc | uint32(i)<<uint(32-stride*(level+1))
				if !walk(c, childAcc, level+1) {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, 0, 0)
}

// PrefixString formats a prefix for diagnostics, e.g. "10.0.0.0/8".
func PrefixString(prefix uint32, plen int) string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(prefix>>24), byte(prefix>>16), byte(prefix>>8), byte(prefix), plen)
}

// CommonPrefixLen returns the number of leading bits a and b share
// (helper for route aggregation tooling).
func CommonPrefixLen(a, b uint32) int {
	return bits.LeadingZeros32(a ^ b)
}
