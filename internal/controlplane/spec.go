// Package controlplane implements the declarative control plane: a
// ClusterSpec describes the *desired* state of a gateway cluster — which
// members exist, their ECMP weight, pod count, flow-table backend and
// administrative state — and a Reconciler drives the observed cluster
// toward it, one rate-limited step per virtual-time tick, the way a
// Kubernetes controller converges a Deployment.
//
// The point of the indirection is make-before-break: operators state the
// destination ("member 2 removed", "member 3 at weight 1.0") and the
// reconciler sequences the transition safely — drain before remove, add
// then shift canary weight, one pod per step on a rolling resize. Because
// every step fires from the cluster's control engine at a deterministic
// tick, the whole trajectory is reproducible: byte-identical at any shard
// count and under record↔replay, like everything else in the simulator.
package controlplane

import (
	"fmt"
	"math"

	"albatross/internal/errs"
)

// Administrative states a MemberSpec can request.
const (
	// AdminUp advertises the member's route: the normal serving state.
	AdminUp = "up"
	// AdminDrained withdraws the route indefinitely while keeping pods
	// running: new flows re-ECMP to the survivors, in-flight traffic
	// finishes. The maintenance state.
	AdminDrained = "drained"
	// AdminRemoved retires the member permanently. The reconciler drains
	// first and removes only after a full soak interval — never a hard cut.
	// Terminal: a removed slot cannot be resurrected (grow with a new
	// trailing member instead).
	AdminRemoved = "removed"
)

// MemberSpec is the desired state of one cluster member. The zero value
// means "a full-weight serving member with an unmanaged pod count":
// weight 0 is treated as 1.0 and admin "" as up, so specs only state what
// deviates from the default.
type MemberSpec struct {
	// Weight is the desired ECMP weight (0 = 1.0). A canary runs at 0.1,
	// a drac at 0.5, a full member at 1.0.
	Weight float64
	// Pods is the desired active pod count; 0 leaves the count unmanaged
	// (the reconciler never scales a member whose spec doesn't ask for it).
	Pods int
	// Admin is the desired administrative state: AdminUp (default),
	// AdminDrained, or AdminRemoved.
	Admin string
	// Backend is the desired flow-table backend name; "" leaves the
	// backend unmanaged.
	Backend string
}

// NormWeight is the effective desired weight (0 ⇒ 1.0).
func (m MemberSpec) NormWeight() float64 {
	if m.Weight == 0 {
		return 1.0
	}
	return m.Weight
}

// NormAdmin is the effective desired admin state ("" ⇒ AdminUp).
func (m MemberSpec) NormAdmin() string {
	if m.Admin == "" {
		return AdminUp
	}
	return m.Admin
}

// ClusterSpec is the desired state of the whole cluster. Members[i]
// corresponds to cluster member index i — members are never renumbered, so
// the slot correspondence is stable across adds and removals (removed
// members keep a tombstone entry with Admin: AdminRemoved). A spec longer
// than the cluster asks the reconciler to grow it; a shorter spec is a
// validation error, because silence about an existing member is ambiguous.
type ClusterSpec struct {
	Members []MemberSpec
}

// Validate checks the spec's internal consistency. Cluster-dependent rules
// (tombstone resurrection, spec shorter than the cluster) are enforced by
// Reconciler.SetSpec, which can see the observed state.
func (s ClusterSpec) Validate() error {
	if len(s.Members) == 0 {
		return fmt.Errorf("controlplane: spec has no members: %w", errs.BadConfig)
	}
	for i, m := range s.Members {
		if m.Weight < 0 || math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) {
			return fmt.Errorf("controlplane: member %d: weight %v must be a finite non-negative number: %w", i, m.Weight, errs.BadConfig)
		}
		if m.Pods < 0 {
			return fmt.Errorf("controlplane: member %d: pods %d must be >= 0: %w", i, m.Pods, errs.BadConfig)
		}
		switch m.NormAdmin() {
		case AdminUp, AdminDrained, AdminRemoved:
		default:
			return fmt.Errorf("controlplane: member %d: admin %q must be %q, %q or %q: %w",
				i, m.Admin, AdminUp, AdminDrained, AdminRemoved, errs.BadConfig)
		}
		if m.NormAdmin() == AdminRemoved && (m.Pods != 0 || m.Backend != "") {
			return fmt.Errorf("controlplane: member %d: a removed member cannot pin pods or backend: %w", i, errs.BadConfig)
		}
	}
	return nil
}

// Clone returns a deep copy, so callers can mutate a spec and re-submit
// without aliasing the reconciler's current one.
func (s ClusterSpec) Clone() ClusterSpec {
	out := ClusterSpec{Members: make([]MemberSpec, len(s.Members))}
	copy(out.Members, s.Members)
	return out
}

// String renders the spec compactly and deterministically, e.g.
// "spec[3]{0: w=1 pods=2; 1: w=0.5; 2: removed}".
func (s ClusterSpec) String() string {
	out := fmt.Sprintf("spec[%d]{", len(s.Members))
	for i, m := range s.Members {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%d: ", i)
		if m.NormAdmin() == AdminRemoved {
			out += "removed"
			continue
		}
		out += fmt.Sprintf("w=%g", m.NormWeight())
		if m.Pods > 0 {
			out += fmt.Sprintf(" pods=%d", m.Pods)
		}
		if m.NormAdmin() == AdminDrained {
			out += " drained"
		}
		if m.Backend != "" {
			out += " backend=" + m.Backend
		}
	}
	return out + "}"
}
