package controlplane

import (
	"fmt"
	"strings"

	"albatross/internal/cluster"
	"albatross/internal/errs"
	"albatross/internal/sim"
)

// Config tunes the reconcile loop.
type Config struct {
	// Interval is the virtual-time tick period (default 5ms). Every
	// Interval the reconciler diffs spec against observed state and
	// applies at most StepsPerTick corrective steps.
	Interval sim.Duration
	// StepsPerTick rate-limits convergence (default 1). One step per tick
	// is the make-before-break guarantee: a drain lands a full tick before
	// the removal that depends on it, a member is added a full tick before
	// weight shifts onto it.
	StepsPerTick int
}

// Step is one applied (or attempted) corrective action, recorded in the
// reconciler's deterministic step log.
type Step struct {
	At     sim.Time
	Node   int
	Action string // "add", "drain", "restore", "remove", "weight", "scale-up", "scale-down", "backend"
	Detail string
	Err    error
}

func (s Step) String() string {
	out := fmt.Sprintf("%v node=%d %s", s.At, s.Node, s.Action)
	if s.Detail != "" {
		out += " " + s.Detail
	}
	if s.Err != nil {
		out += " ERR " + s.Err.Error()
	}
	return out
}

// Reconciler drives a cluster toward a ClusterSpec. Construct with
// NewReconciler; the tick timer arms immediately on the cluster's control
// engine, so the loop runs whenever the cluster runs. Submit new desired
// state at any time with SetSpec — the loop picks it up on its next tick.
//
// All methods must be called from the control engine's context (test code
// between RunFor calls, scenario events, or the tick itself) — the same
// single-threaded discipline every other control-plane API in the
// simulator follows.
type Reconciler struct {
	c    *cluster.Cluster
	cfg  Config
	spec ClusterSpec

	steps []Step
	ticks int

	// adminUp shadows the administrative state the reconciler has applied
	// per member. The cluster deliberately doesn't expose its admin clock;
	// the reconciler owns every admin transition it makes, so its own
	// record is authoritative for its purposes.
	adminUp []bool
	// drainedAt[i] is when the reconciler drained member i (for the
	// removal soak: remove only after a full Interval of drain).
	drainedAt []sim.Time
}

// NewReconciler validates spec against the cluster, attaches the
// reconciler as the cluster's controller and arms the tick timer.
func NewReconciler(c *cluster.Cluster, spec ClusterSpec, cfg Config) (*Reconciler, error) {
	if c == nil {
		return nil, fmt.Errorf("controlplane: nil cluster: %w", errs.BadConfig)
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("controlplane: interval %v must be >= 0: %w", cfg.Interval, errs.BadConfig)
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * sim.Millisecond
	}
	if cfg.StepsPerTick < 0 {
		return nil, fmt.Errorf("controlplane: steps per tick %d must be >= 0: %w", cfg.StepsPerTick, errs.BadConfig)
	}
	if cfg.StepsPerTick == 0 {
		cfg.StepsPerTick = 1
	}
	r := &Reconciler{c: c, cfg: cfg}
	for range c.Members() {
		r.adminUp = append(r.adminUp, true)
		r.drainedAt = append(r.drainedAt, 0)
	}
	if err := r.SetSpec(spec); err != nil {
		return nil, err
	}
	c.AttachController(r)
	c.Engine.AfterArg(cfg.Interval, reconcileTick, r)
	return r, nil
}

// SetSpec replaces the desired state. Beyond ClusterSpec.Validate, two
// cluster-dependent rules apply: the spec must cover every existing member
// (no silent shrink), and a member the cluster has already removed is a
// tombstone — its spec entry must stay AdminRemoved forever.
func (r *Reconciler) SetSpec(spec ClusterSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(spec.Members) < len(r.c.Members()) {
		return fmt.Errorf("controlplane: spec has %d members but cluster has %d — removed members keep tombstone entries: %w",
			len(spec.Members), len(r.c.Members()), errs.BadConfig)
	}
	for i, m := range r.c.Members() {
		if m.State() == "removed" && spec.Members[i].NormAdmin() != AdminRemoved {
			return fmt.Errorf("controlplane: member %d is removed and cannot be resurrected — spec entry must stay admin %q: %w",
				i, AdminRemoved, errs.BadConfig)
		}
	}
	for i := len(r.c.Members()); i < len(spec.Members); i++ {
		if spec.Members[i].NormAdmin() == AdminRemoved {
			return fmt.Errorf("controlplane: member %d is declared removed but was never added: %w", i, errs.BadConfig)
		}
	}
	r.spec = spec.Clone()
	return nil
}

// Spec returns a copy of the current desired state.
func (r *Reconciler) Spec() ClusterSpec { return r.spec.Clone() }

// reconcileTick is the recurring engine event: rearm, then converge by at
// most StepsPerTick steps. Same self-rearming pattern as the BFD probe
// timers — the timer never outlives the engine, and ticking an already
// converged cluster is a cheap no-op diff.
func reconcileTick(arg any) {
	r := arg.(*Reconciler)
	r.c.Engine.AfterArg(r.cfg.Interval, reconcileTick, r)
	r.ticks++
	for n := 0; n < r.cfg.StepsPerTick; n++ {
		step, ok := r.nextStep()
		if !ok {
			break
		}
		r.apply(step)
		if step.Err != nil {
			break // don't burn the tick budget retrying a failing member
		}
	}
}

// nextStep computes the single highest-priority corrective step, scanning
// members in index order and, within a member, in make-before-break order:
// admin transitions before weight, weight before pods, pods before backend.
// Growth comes last — existing members are healed before new ones join.
// Returns ok=false when no step is applicable right now (which includes
// "waiting out a drain soak": not applicable yet, but not converged).
func (r *Reconciler) nextStep() (Step, bool) {
	now := r.c.Engine.Now()
	members := r.c.Members()
	for i, m := range members {
		if i >= len(r.spec.Members) {
			break // SetSpec guarantees this cannot happen; belt and braces
		}
		want := r.spec.Members[i]
		if m.State() == "removed" {
			continue // tombstone; SetSpec guarantees the spec agrees
		}
		switch want.NormAdmin() {
		case AdminRemoved:
			if r.adminUp[i] {
				return Step{Node: i, Action: "drain", Detail: "make-before-break removal"}, true
			}
			if now >= r.drainedAt[i].Add(r.cfg.Interval) {
				return Step{Node: i, Action: "remove"}, true
			}
			continue // soaking; later actions are moot for this member
		case AdminDrained:
			if r.adminUp[i] {
				return Step{Node: i, Action: "drain"}, true
			}
		case AdminUp:
			if !r.adminUp[i] {
				return Step{Node: i, Action: "restore"}, true
			}
		}
		if got := m.Weight(); got != want.NormWeight() {
			return Step{Node: i, Action: "weight", Detail: fmt.Sprintf("%g -> %g", got, want.NormWeight())}, true
		}
		if want.Pods > 0 {
			if got := m.ActivePods(); got < want.Pods {
				return Step{Node: i, Action: "scale-up", Detail: fmt.Sprintf("%d -> %d", got, got+1)}, true
			} else if got > want.Pods {
				return Step{Node: i, Action: "scale-down", Detail: fmt.Sprintf("%d -> %d", got, got-1)}, true
			}
		}
		if want.Backend != "" && m.Node.FlowBackendName() != want.Backend {
			return Step{Node: i, Action: "backend", Detail: want.Backend}, true
		}
	}
	if len(r.spec.Members) > len(members) {
		return Step{Node: len(members), Action: "add"}, true
	}
	return Step{}, false
}

// apply executes one step through the cluster's lifecycle APIs and records
// it in the step log.
func (r *Reconciler) apply(s Step) {
	s.At = r.c.Engine.Now()
	switch s.Action {
	case "drain":
		s.Err = r.c.SetNodeAdmin(s.Node, false)
		if s.Err == nil {
			r.adminUp[s.Node] = false
			r.drainedAt[s.Node] = s.At
		}
	case "restore":
		s.Err = r.c.SetNodeAdmin(s.Node, true)
		if s.Err == nil {
			r.adminUp[s.Node] = true
		}
	case "remove":
		s.Err = r.c.RemoveNode(s.Node)
	case "weight":
		s.Err = r.c.SetWeight(s.Node, r.spec.Members[s.Node].NormWeight())
	case "scale-up":
		m, err := r.c.MemberAt(s.Node)
		if err == nil {
			err = r.c.ScalePods(s.Node, m.ActivePods()+1)
		}
		s.Err = err
	case "scale-down":
		m, err := r.c.MemberAt(s.Node)
		if err == nil {
			err = r.c.ScalePods(s.Node, m.ActivePods()-1)
		}
		s.Err = err
	case "backend":
		s.Err = r.c.SetNodeFlowBackend(s.Node, r.spec.Members[s.Node].Backend)
	case "add":
		// New members join drained-equivalent only in the weight sense:
		// AddNode brings them up at full weight, so a canary spec (low
		// weight) shifts down on the *next* tick. Joining at full weight
		// is loss-free — the member is healthy by construction — and
		// keeps AddNode's consistent-hash bound intact.
		_, s.Err = r.c.AddNode()
		if s.Err == nil {
			r.adminUp = append(r.adminUp, true)
			r.drainedAt = append(r.drainedAt, 0)
		}
	default:
		s.Err = fmt.Errorf("controlplane: unknown action %q: %w", s.Action, errs.BadState)
	}
	r.steps = append(r.steps, s)
}

// Converged reports whether observed state matches the spec — no step is
// applicable and nothing is soaking toward removal.
func (r *Reconciler) Converged() bool {
	if _, ok := r.nextStep(); ok {
		return false
	}
	// A drain soak returns no step but is not converged: the spec still
	// wants the member gone.
	for i, m := range r.c.Members() {
		if i < len(r.spec.Members) && r.spec.Members[i].NormAdmin() == AdminRemoved && m.State() != "removed" {
			return false
		}
	}
	return true
}

// Plan returns the full unsequenced diff: every corrective step the
// reconciler would eventually apply, one entry per divergent aspect, in
// member order. A dry-run view — nothing is applied and the rate limit
// doesn't apply (the live loop interleaves these across ticks).
func (r *Reconciler) Plan() []Step {
	var plan []Step
	members := r.c.Members()
	for i, m := range members {
		if i >= len(r.spec.Members) || m.State() == "removed" {
			continue
		}
		want := r.spec.Members[i]
		switch want.NormAdmin() {
		case AdminRemoved:
			if r.adminUp[i] {
				plan = append(plan, Step{Node: i, Action: "drain", Detail: "make-before-break removal"})
			}
			plan = append(plan, Step{Node: i, Action: "remove"})
			continue
		case AdminDrained:
			if r.adminUp[i] {
				plan = append(plan, Step{Node: i, Action: "drain"})
			}
		case AdminUp:
			if !r.adminUp[i] {
				plan = append(plan, Step{Node: i, Action: "restore"})
			}
		}
		if got := m.Weight(); got != want.NormWeight() {
			plan = append(plan, Step{Node: i, Action: "weight", Detail: fmt.Sprintf("%g -> %g", got, want.NormWeight())})
		}
		if want.Pods > 0 && m.ActivePods() != want.Pods {
			action := "scale-up"
			if m.ActivePods() > want.Pods {
				action = "scale-down"
			}
			plan = append(plan, Step{Node: i, Action: action, Detail: fmt.Sprintf("%d -> %d", m.ActivePods(), want.Pods)})
		}
		if want.Backend != "" && m.Node.FlowBackendName() != want.Backend {
			plan = append(plan, Step{Node: i, Action: "backend", Detail: want.Backend})
		}
	}
	for i := len(members); i < len(r.spec.Members); i++ {
		plan = append(plan, Step{Node: i, Action: "add"})
	}
	return plan
}

// Steps returns the applied step log in order.
func (r *Reconciler) Steps() []Step { return r.steps }

// Ticks returns how many reconcile ticks have fired.
func (r *Reconciler) Ticks() int { return r.ticks }

// Interval returns the tick period.
func (r *Reconciler) Interval() sim.Duration { return r.cfg.Interval }

// Summary implements cluster.Controller: a deterministic one-liner for
// reports, e.g. "reconciler: 42 ticks, 7 steps, converged".
func (r *Reconciler) Summary() string {
	state := "converged"
	if !r.Converged() {
		state = fmt.Sprintf("pending %d", len(r.Plan()))
	}
	errn := 0
	for _, s := range r.steps {
		if s.Err != nil {
			errn++
		}
	}
	out := fmt.Sprintf("reconciler: %d ticks, %d steps, %s", r.ticks, len(r.steps), state)
	if errn > 0 {
		out += fmt.Sprintf(", %d errors", errn)
	}
	return out
}

// StepLog renders the applied steps one per line — the reconcile section
// of scenario reports.
func (r *Reconciler) StepLog() string {
	var b strings.Builder
	for _, s := range r.steps {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}
