package controlplane

import (
	"errors"
	"strings"
	"testing"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

const testSeed = 42

// specUpdate schedules a SetSpec at a virtual time — the test-side analog
// of the scenario DSL's spec_update events.
type specUpdate struct {
	at   sim.Duration
	spec ClusterSpec
}

// runDrill builds a cluster at the given shard count, attaches a
// reconciler with the initial spec, schedules the spec updates, drives a
// fixed-seed workload for 400ms of virtual time and returns the cluster,
// reconciler and the two byte-identity documents (outcome report and the
// reconciler's timed step log).
func runDrill(t *testing.T, nodes, shards int, initial ClusterSpec, updates []specUpdate) (*cluster.Cluster, *Reconciler, string) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: nodes, Seed: testSeed, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	if err := c.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReconciler(c, initial, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		u := u
		c.Engine.At(sim.Time(u.at), func() {
			if err := r.SetSpec(u.spec); err != nil {
				t.Fatalf("spec update at %v: %v", u.at, err)
			}
		})
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(380 * sim.Millisecond)
	src.Stop()
	c.RunFor(20 * sim.Millisecond)
	return c, r, c.Outcome() + "\n== steps ==\n" + r.StepLog()
}

// assertZeroLoss is the drills' common teeth: no queue drops, no
// blackholed packets, reconciler converged, no errored steps.
func assertZeroLoss(t *testing.T, c *cluster.Cluster, r *Reconciler) {
	t.Helper()
	if c.Drops != 0 {
		t.Fatalf("dropped %d packets; reconciled transitions must be loss-free", c.Drops)
	}
	if bh := c.Blackholed(); bh != 0 {
		t.Fatalf("blackholed %d packets; make-before-break must withdraw before stopping", bh)
	}
	if !r.Converged() {
		t.Fatalf("not converged; plan: %+v", r.Plan())
	}
	for _, s := range r.Steps() {
		if s.Err != nil {
			t.Fatalf("errored step: %v", s)
		}
	}
}

func allUp(n int) ClusterSpec {
	return ClusterSpec{Members: make([]MemberSpec, n)}
}

// TestRollingDrainDrill walks a drain across all three members, one at a
// time: each spec update drains the next member and restores the previous
// one. Zero loss throughout, and byte-identical at shards 1 and 4.
func TestRollingDrainDrill(t *testing.T) {
	drained := func(i int) ClusterSpec {
		s := allUp(3)
		s.Members[i].Admin = AdminDrained
		return s
	}
	updates := []specUpdate{
		{40 * sim.Millisecond, drained(0)},
		{100 * sim.Millisecond, drained(1)},
		{160 * sim.Millisecond, drained(2)},
		{220 * sim.Millisecond, allUp(3)},
	}
	c, r, doc := runDrill(t, 3, 1, allUp(3), updates)
	assertZeroLoss(t, c, r)

	var seq []string
	for _, s := range r.Steps() {
		seq = append(seq, s.Action)
	}
	want := "drain restore drain restore drain restore"
	if got := strings.Join(seq, " "); got != want {
		t.Fatalf("step sequence %q, want %q", got, want)
	}
	// Rate limit: distinct steps land on distinct ticks.
	for i := 1; i < len(r.Steps()); i++ {
		if r.Steps()[i].At < r.Steps()[i-1].At.Add(r.Interval()) {
			t.Fatalf("steps %d and %d within one interval: %v %v", i-1, i, r.Steps()[i-1], r.Steps()[i])
		}
	}

	_, _, doc4 := runDrill(t, 3, 4, allUp(3), updates)
	if doc != doc4 {
		t.Fatal("rolling drain drill not byte-identical at shards 1 vs 4")
	}
}

// TestCanaryWeightShiftDrill grows a 3-node cluster by a canary member at
// weight 0.1, then shifts it 0.5 → 1.0 through spec updates: the
// add-then-shift make-before-break pattern.
func TestCanaryWeightShiftDrill(t *testing.T) {
	canary := func(w float64) ClusterSpec {
		s := allUp(4)
		s.Members[3].Weight = w
		return s
	}
	updates := []specUpdate{
		{40 * sim.Millisecond, canary(0.1)},
		{140 * sim.Millisecond, canary(0.5)},
		{240 * sim.Millisecond, canary(1.0)},
	}
	c, r, doc := runDrill(t, 3, 1, allUp(3), updates)
	assertZeroLoss(t, c, r)

	if len(c.Members()) != 4 {
		t.Fatalf("members = %d, want 4", len(c.Members()))
	}
	m, _ := c.MemberAt(3)
	if m.Weight() != 1.0 {
		t.Fatalf("final canary weight = %g, want 1.0", m.Weight())
	}
	var seq []string
	for _, s := range r.Steps() {
		seq = append(seq, s.Action)
	}
	// Add lands before any weight shift; the three shifts follow.
	want := "add weight weight weight"
	if got := strings.Join(seq, " "); got != want {
		t.Fatalf("step sequence %q, want %q", got, want)
	}
	// The proxied fabric advertises the new member's prefix.
	if got := c.SwitchModel().RIB().Len(); got != 4 {
		t.Fatalf("RIB prefixes = %d, want 4", got)
	}

	_, _, doc4 := runDrill(t, 3, 4, allUp(3), updates)
	if doc != doc4 {
		t.Fatal("canary drill not byte-identical at shards 1 vs 4")
	}
}

// TestAddRemoveUnderLoadDrill grows the cluster by one member, then
// retires another via the spec tombstone: the reconciler must drain a full
// interval before removing, and the whole transition stays loss-free.
func TestAddRemoveUnderLoadDrill(t *testing.T) {
	grown := allUp(4)
	retired := allUp(4)
	retired.Members[1].Admin = AdminRemoved
	updates := []specUpdate{
		{40 * sim.Millisecond, grown},
		{140 * sim.Millisecond, retired},
	}
	c, r, doc := runDrill(t, 3, 1, allUp(3), updates)
	assertZeroLoss(t, c, r)

	m, _ := c.MemberAt(1)
	if m.State() != "removed" {
		t.Fatalf("member 1 state %q, want removed", m.State())
	}
	var drainAt, removeAt sim.Time
	for _, s := range r.Steps() {
		if s.Node != 1 {
			continue
		}
		switch s.Action {
		case "drain":
			drainAt = s.At
		case "remove":
			removeAt = s.At
		}
	}
	if drainAt == 0 || removeAt == 0 {
		t.Fatalf("missing drain/remove steps for node 1:\n%s", r.StepLog())
	}
	if removeAt < drainAt.Add(r.Interval()) {
		t.Fatalf("remove at %v less than one interval after drain at %v", removeAt, drainAt)
	}
	// The retired member's prefix left the fabric; the added member's is in.
	if got := c.SwitchModel().RIB().Len(); got != 3 {
		t.Fatalf("RIB prefixes = %d, want 3 (4 members − 1 removed)", got)
	}

	_, _, doc4 := runDrill(t, 3, 4, allUp(3), updates)
	if doc != doc4 {
		t.Fatal("add/remove drill not byte-identical at shards 1 vs 4")
	}
}

// TestRollingPodAndBackendDrill scales every member from 1 to 2 pods and
// swaps the flow backend, one step per tick in member order.
func TestRollingPodAndBackendDrill(t *testing.T) {
	rolled := allUp(3)
	for i := range rolled.Members {
		rolled.Members[i].Pods = 2
		rolled.Members[i].Backend = "session"
	}
	updates := []specUpdate{{40 * sim.Millisecond, rolled}}
	c, r, _ := runDrill(t, 3, 1, allUp(3), updates)
	assertZeroLoss(t, c, r)

	for i := 0; i < 3; i++ {
		m, _ := c.MemberAt(i)
		if got := m.ActivePods(); got != 2 {
			t.Fatalf("member %d pods = %d, want 2", i, got)
		}
		if got := m.Node.FlowBackendName(); got != "session" {
			t.Fatalf("member %d backend = %q, want session", i, got)
		}
	}
	// Member order: node 0 fully converges before node 1 starts.
	var nodes []int
	for _, s := range r.Steps() {
		nodes = append(nodes, s.Node)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] < nodes[i-1] {
			t.Fatalf("steps regressed to an earlier member: %v", nodes)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []ClusterSpec{
		{},                                    // no members
		{Members: []MemberSpec{{Weight: -1}}}, // negative weight
		{Members: []MemberSpec{{Pods: -2}}},   // negative pods
		{Members: []MemberSpec{{Admin: "sideways"}}},            // unknown admin
		{Members: []MemberSpec{{Admin: AdminRemoved, Pods: 1}}}, // removed pins pods
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, errs.BadConfig) {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
	ok := ClusterSpec{Members: []MemberSpec{{}, {Weight: 0.5, Pods: 2, Admin: AdminDrained, Backend: "othello"}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := ok.String(); !strings.Contains(s, "w=0.5") || !strings.Contains(s, "drained") {
		t.Fatalf("spec rendering %q", s)
	}
}

func TestSetSpecClusterRules(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 3, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReconciler(c, allUp(3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking spec below the member count is rejected.
	if err := r.SetSpec(allUp(2)); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("short spec: %v", err)
	}
	// Declaring a never-added member removed is rejected.
	ghost := allUp(4)
	ghost.Members[3].Admin = AdminRemoved
	if err := r.SetSpec(ghost); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("ghost tombstone: %v", err)
	}
	// A member the cluster has removed cannot be resurrected.
	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if err := r.SetSpec(allUp(3)); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("tombstone resurrection: %v", err)
	}
	tomb := allUp(3)
	tomb.Members[2].Admin = AdminRemoved
	if err := r.SetSpec(tomb); err != nil {
		t.Fatal(err)
	}
}

func TestPlanIsDryRun(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 2, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	spec := allUp(3)
	spec.Members[0].Admin = AdminDrained
	spec.Members[1].Weight = 0.25
	r, err := NewReconciler(c, spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan := r.Plan()
	if len(plan) != 3 { // drain@0, weight@1, add@2
		t.Fatalf("plan = %+v, want 3 entries", plan)
	}
	if plan[0].Action != "drain" || plan[1].Action != "weight" || plan[2].Action != "add" {
		t.Fatalf("plan order = %+v", plan)
	}
	if len(c.Members()) != 2 || r.Converged() {
		t.Fatal("Plan must not mutate the cluster")
	}
	if s := r.Summary(); !strings.Contains(s, "pending 3") {
		t.Fatalf("summary %q", s)
	}
	if c.Controller() != cluster.Controller(r) {
		t.Fatal("reconciler not attached as the cluster controller")
	}
}
