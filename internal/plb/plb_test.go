package plb

import (
	"testing"
	"testing/quick"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

type harness struct {
	e   *sim.Engine
	p   *PLB
	out []Emission
	t   *testing.T
}

func newHarness(t *testing.T, cfg Config) *harness {
	h := &harness{e: sim.NewEngine(), t: t}
	p, err := New(h.e, cfg, func(em Emission) { h.out = append(h.out, em) })
	if err != nil {
		t.Fatal(err)
	}
	h.p = p
	return h
}

func cfg1q(cores int) Config {
	return Config{
		NumOrderQueues: 1,
		QueueDepth:     16,
		Timeout:        100 * sim.Microsecond,
		HOLThreshold:   10 * sim.Microsecond,
		NumCores:       cores,
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(3, 44)
	if c.NumOrderQueues != 4 || c.QueueDepth != 4096 || c.NumCores != 44 || c.PodID != 3 {
		t.Fatalf("config = %+v", c)
	}
	if DefaultConfig(0, 2).NumOrderQueues != 1 {
		t.Fatal("min queues != 1")
	}
	if DefaultConfig(0, 100).NumOrderQueues != 8 {
		t.Fatal("max queues != 8")
	}
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(e, Config{NumOrderQueues: 0, NumCores: 1}, nil); err == nil {
		t.Fatal("0 queues accepted")
	}
	if _, err := New(e, Config{NumOrderQueues: 1, QueueDepth: 100, NumCores: 1}, nil); err == nil {
		t.Fatal("non-power-of-two depth accepted")
	}
	if _, err := New(e, Config{NumOrderQueues: 1, NumCores: 0}, nil); err == nil {
		t.Fatal("0 cores accepted")
	}
	p, err := New(e, Config{NumOrderQueues: 1, NumCores: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Config()
	if c.QueueDepth != 4096 || c.Timeout != 100*sim.Microsecond || c.HOLThreshold != 10*sim.Microsecond {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestRoundRobinSpray(t *testing.T) {
	h := newHarness(t, cfg1q(4))
	cores := map[int]int{}
	for i := 0; i < 12; i++ {
		core, _, ok := h.p.Dispatch(uint32(i * 7919))
		if !ok {
			t.Fatal("dispatch failed")
		}
		cores[core]++
	}
	for c := 0; c < 4; c++ {
		if cores[c] != 3 {
			t.Fatalf("core %d got %d packets, want 3 (round robin)", c, cores[c])
		}
	}
}

func TestInOrderReturnEmitsInOrder(t *testing.T) {
	h := newHarness(t, cfg1q(2))
	var metas []packet.Meta
	for i := 0; i < 8; i++ {
		_, m, ok := h.p.Dispatch(0)
		if !ok {
			t.Fatal("dispatch failed")
		}
		metas = append(metas, m)
	}
	for i, m := range metas {
		i, m := i, m
		h.e.At(sim.Time(1000*(i+1)), func() { h.p.Return(i, m) })
	}
	h.e.Run()
	if len(h.out) != 8 {
		t.Fatalf("emitted %d, want 8", len(h.out))
	}
	for i, em := range h.out {
		if !em.InOrder {
			t.Fatalf("emission %d not in order", i)
		}
		if em.Item.(int) != i {
			t.Fatalf("emission %d carries item %v", i, em.Item)
		}
	}
	s := h.p.Stats()
	if s.EmittedInOrder != 8 || s.EmittedBestEffort != 0 || s.Dispatched != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOutOfOrderReturnReordered(t *testing.T) {
	h := newHarness(t, cfg1q(4))
	var metas []packet.Meta
	for i := 0; i < 8; i++ {
		_, m, _ := h.p.Dispatch(0)
		metas = append(metas, m)
	}
	// Return in reverse: core latencies inverted.
	for i := 7; i >= 0; i-- {
		i := i
		m := metas[i]
		h.e.At(sim.Time(1000*(8-i)), func() { h.p.Return(i, m) })
	}
	h.e.Run()
	if len(h.out) != 8 {
		t.Fatalf("emitted %d, want 8", len(h.out))
	}
	for i, em := range h.out {
		if em.Item.(int) != i || !em.InOrder {
			t.Fatalf("emission %d = item %v inorder=%v; order not restored", i, em.Item, em.InOrder)
		}
	}
	// All emissions happen when the last (head) packet returns.
	if h.out[0].Time != h.out[7].Time {
		t.Fatal("reordered burst should flush together")
	}
}

func TestFIFOFullDrops(t *testing.T) {
	h := newHarness(t, cfg1q(1))
	for i := 0; i < 16; i++ {
		if _, _, ok := h.p.Dispatch(0); !ok {
			t.Fatalf("dispatch %d failed below capacity", i)
		}
	}
	if _, _, ok := h.p.Dispatch(0); ok {
		t.Fatal("dispatch beyond FIFO depth succeeded")
	}
	if h.p.Stats().DispatchDrops != 1 {
		t.Fatalf("drops = %d", h.p.Stats().DispatchDrops)
	}
	if h.p.InFlight(0) != 16 {
		t.Fatalf("inflight = %d", h.p.InFlight(0))
	}
}

func TestTimeoutReleasesHead(t *testing.T) {
	h := newHarness(t, cfg1q(2))
	_, m0, _ := h.p.Dispatch(0) // never returned (simulates CPU loss)
	_, m1, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(10*sim.Microsecond), func() { h.p.Return("b", m1) })
	h.e.Run()

	// Packet b must have been emitted in order after the head timed out at
	// 100µs, not blocked forever.
	if len(h.out) != 1 {
		t.Fatalf("emitted %d, want 1", len(h.out))
	}
	if h.out[0].Item != "b" || !h.out[0].InOrder {
		t.Fatalf("emission = %+v", h.out[0])
	}
	if h.out[0].Time != sim.Time(100*sim.Microsecond) {
		t.Fatalf("released at %v, want exactly the 100µs timeout", h.out[0].Time)
	}
	s := h.p.Stats()
	if s.TimeoutReleases != 1 {
		t.Fatalf("timeout releases = %d", s.TimeoutReleases)
	}
	if s.HOLEvents == 0 {
		t.Fatal("a 100µs head block must count as a HOL event")
	}
	_ = m0
}

func TestLateReturnBestEffort(t *testing.T) {
	h := newHarness(t, cfg1q(2))
	_, m0, _ := h.p.Dispatch(0)
	_, m1, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(10*sim.Microsecond), func() { h.p.Return(1, m1) })
	// Head comes back *after* its timeout release: legal check fails
	// (window has moved past it), so best-effort emission.
	h.e.At(sim.Time(200*sim.Microsecond), func() { h.p.Return(0, m0) })
	h.e.Run()
	if len(h.out) != 2 {
		t.Fatalf("emitted %d, want 2", len(h.out))
	}
	if h.out[0].Item.(int) != 1 || !h.out[0].InOrder {
		t.Fatalf("first emission = %+v", h.out[0])
	}
	if h.out[1].Item.(int) != 0 || h.out[1].InOrder {
		t.Fatalf("late packet should be best-effort: %+v", h.out[1])
	}
	st := h.p.Stats()
	if st.DisorderRate() != 0.5 {
		t.Fatalf("disorder rate = %v", st.DisorderRate())
	}
}

func TestDropFlagReleasesResources(t *testing.T) {
	h := newHarness(t, cfg1q(2))
	_, m0, _ := h.p.Dispatch(0)
	_, m1, _ := h.p.Dispatch(0)
	// CPU decides to ACL-drop packet 0 and returns it with the drop flag.
	m0.Flags |= packet.MetaFlagDrop
	h.e.At(sim.Time(5*sim.Microsecond), func() { h.p.Return(nil, m0) })
	h.e.At(sim.Time(6*sim.Microsecond), func() { h.p.Return(1, m1) })
	h.e.Run()
	// Only packet 1 is emitted; no 100µs HOL stall occurred.
	if len(h.out) != 1 || h.out[0].Item.(int) != 1 {
		t.Fatalf("out = %+v", h.out)
	}
	if h.out[0].Time != sim.Time(6*sim.Microsecond) {
		t.Fatalf("emitted at %v; drop flag failed to unblock head", h.out[0].Time)
	}
	s := h.p.Stats()
	if s.DropFlagReleases != 1 || s.TimeoutReleases != 0 || s.HOLEvents != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWithoutDropFlagHOLOccurs(t *testing.T) {
	// The Fig. 12 contrast: same workload, but the CPU drop is silent.
	h := newHarness(t, cfg1q(2))
	_, _, _ = h.p.Dispatch(0) // silently dropped by CPU
	_, m1, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(6*sim.Microsecond), func() { h.p.Return(1, m1) })
	h.e.Run()
	if len(h.out) != 1 {
		t.Fatalf("out = %+v", h.out)
	}
	if h.out[0].Time != sim.Time(100*sim.Microsecond) {
		t.Fatalf("emitted at %v, want 100µs (HOL until timeout)", h.out[0].Time)
	}
	s := h.p.Stats()
	if s.TimeoutReleases != 1 || s.HOLEvents == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStaleAliasCase3(t *testing.T) {
	// Depth 16 => legal check uses low 4 bits. A stale packet with
	// psn = head+16 aliases into the window, passes the legal check, and
	// must be caught by the reorder check's PSN comparison (case 3).
	h := newHarness(t, cfg1q(1))
	_, m0, _ := h.p.Dispatch(0)
	stale := m0
	stale.PSN = m0.PSN + 16 // same low-4 bits
	h.e.At(1000, func() { h.p.Return("stale", stale) })
	h.e.At(2000, func() { h.p.Return("real", m0) })
	h.e.Run()
	if len(h.out) != 2 {
		t.Fatalf("emitted %d, want 2", len(h.out))
	}
	if h.out[0].Item != "stale" || h.out[0].InOrder {
		t.Fatalf("stale emission = %+v", h.out[0])
	}
	if h.out[1].Item != "real" || !h.out[1].InOrder {
		t.Fatalf("real emission = %+v", h.out[1])
	}
	if h.p.Stats().StaleEmissions != 1 {
		t.Fatalf("stale emissions = %d", h.p.Stats().StaleEmissions)
	}
}

func TestHeaderOnlyPayloadGone(t *testing.T) {
	cfg := cfg1q(2)
	cfg.PayloadRetained = func(m packet.Meta, now sim.Time) bool {
		// Payload evicted 150µs after ingress.
		return now.Sub(sim.Time(m.IngressNS)) < 150*sim.Microsecond
	}
	h := newHarness(t, cfg)
	_, m0, _ := h.p.Dispatch(0)
	m0.Flags |= packet.MetaFlagHeaderOnly
	_, m1, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(10*sim.Microsecond), func() { h.p.Return(1, m1) })
	// Returns at 200µs: legal check fails AND payload is gone => header drop.
	h.e.At(sim.Time(200*sim.Microsecond), func() { h.p.Return(0, m0) })
	h.e.Run()
	if len(h.out) != 1 {
		t.Fatalf("emitted %d, want 1 (header dropped)", len(h.out))
	}
	if h.p.Stats().HeaderDrops != 1 {
		t.Fatalf("header drops = %d", h.p.Stats().HeaderDrops)
	}
}

func TestHeaderOnlyPayloadStillThere(t *testing.T) {
	cfg := cfg1q(2)
	cfg.PayloadRetained = func(m packet.Meta, now sim.Time) bool { return true }
	h := newHarness(t, cfg)
	_, m0, _ := h.p.Dispatch(0)
	m0.Flags |= packet.MetaFlagHeaderOnly
	_, m1, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(10*sim.Microsecond), func() { h.p.Return(1, m1) })
	h.e.At(sim.Time(200*sim.Microsecond), func() { h.p.Return(0, m0) })
	h.e.Run()
	if len(h.out) != 2 {
		t.Fatalf("emitted %d, want 2 (payload retained => best-effort send)", len(h.out))
	}
}

func TestMultipleQueuesIndependentHOL(t *testing.T) {
	cfg := cfg1q(2)
	cfg.NumOrderQueues = 2
	h := newHarness(t, cfg)
	// Flow hash 0 -> queue 0, flow hash 1 -> queue 1.
	_, _, _ = h.p.Dispatch(0) // queue 0 head, never returns (HOL)
	_, m1, _ := h.p.Dispatch(1)
	h.e.At(1000, func() { h.p.Return("q1", m1) })
	h.e.Run()
	if len(h.out) != 1 || h.out[0].Time != 1000 {
		t.Fatalf("queue 1 blocked by queue 0's HOL: %+v", h.out)
	}
	if h.p.OrdQueueFor(0) == h.p.OrdQueueFor(1) {
		t.Fatal("hashes 0 and 1 should map to different queues")
	}
}

func TestPSNWraparound(t *testing.T) {
	// Push far more than 65536 packets through a small queue to exercise
	// full 16-bit PSN wraparound.
	h := newHarness(t, cfg1q(1))
	const total = 70000
	dispatched := 0
	var pump func()
	pump = func() {
		for batch := 0; batch < 8 && dispatched < total; batch++ {
			_, m, ok := h.p.Dispatch(0)
			if !ok {
				break
			}
			id := dispatched
			dispatched++
			h.e.After(100, func() { h.p.Return(id, m) })
		}
		if dispatched < total {
			h.e.After(200, pump)
		}
	}
	pump()
	h.e.Run()
	if dispatched != total {
		t.Fatalf("dispatched %d", dispatched)
	}
	if len(h.out) != total {
		t.Fatalf("emitted %d, want %d", len(h.out), total)
	}
	for i, em := range h.out {
		if em.Item.(int) != i || !em.InOrder {
			t.Fatalf("emission %d: item=%v inorder=%v", i, em.Item, em.InOrder)
		}
	}
}

func TestCorruptMetaBestEffort(t *testing.T) {
	h := newHarness(t, cfg1q(1))
	h.p.Return("junk", packet.Meta{OrdQ: 99, PSN: 5})
	if len(h.out) != 1 || h.out[0].InOrder {
		t.Fatalf("corrupt meta handling: %+v", h.out)
	}
}

func TestHeadWaitAccounting(t *testing.T) {
	h := newHarness(t, cfg1q(1))
	_, m0, _ := h.p.Dispatch(0)
	h.e.At(sim.Time(20*sim.Microsecond), func() { h.p.Return(0, m0) })
	h.e.Run()
	if h.p.HeadWaitMean() != 20*sim.Microsecond {
		t.Fatalf("head wait mean = %v", h.p.HeadWaitMean())
	}
	if h.p.HeadWaitMax() != 20*sim.Microsecond {
		t.Fatalf("head wait max = %v", h.p.HeadWaitMax())
	}
	if h.p.Stats().HOLEvents != 1 {
		t.Fatal("20µs wait should exceed the 10µs HOL threshold")
	}
}

// Property: for any pattern of return delays (including losses), the
// in-order emissions of each queue appear in strictly increasing PSN order,
// and accounting conserves packets.
func TestOrderAndConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		e := sim.NewEngine()
		var out []Emission
		cfg := Config{
			NumOrderQueues: 1 + int(seed%3),
			QueueDepth:     64,
			Timeout:        100 * sim.Microsecond,
			NumCores:       4,
		}
		p, err := New(e, cfg, func(em Emission) { out = append(out, em) })
		if err != nil {
			return false
		}
		const n = 500
		dropped := 0
		lost := 0
		dispatched := 0
		for i := 0; i < n; i++ {
			at := sim.Time(i) * sim.Time(r.Exp(2*sim.Microsecond)/1000+1)
			e.At(at, func() {
				flow := r.Uint32() % 16
				_, m, ok := p.Dispatch(flow)
				if !ok {
					return
				}
				dispatched++
				switch r.Intn(10) {
				case 0: // silent CPU loss
					lost++
				case 1: // ACL drop with drop flag
					m.Flags |= packet.MetaFlagDrop
					dropped++
					e.After(r.Exp(20*sim.Microsecond), func() { p.Return(nil, m) })
				default:
					e.After(r.Exp(30*sim.Microsecond), func() { p.Return(m.PSN, m) })
				}
			})
		}
		e.Run()
		s := p.Stats()
		// Conservation: every dispatched packet is accounted for.
		accounted := s.EmittedInOrder + s.EmittedBestEffort + s.DropFlagReleases + s.HeaderDrops
		// Drop-flagged packets that timed out before returning are silently
		// freed; silent losses never emit. Both are <= dropped+lost.
		if accounted > uint64(dispatched) {
			return false
		}
		if accounted < uint64(dispatched-dropped-lost) {
			return false
		}
		// Per-queue in-order PSN monotonicity.
		lastPSN := map[uint8]int{}
		for _, em := range out {
			if !em.InOrder {
				continue
			}
			q := em.Meta.OrdQ
			cur := int(em.Meta.PSN)
			if prev, seen := lastPSN[q]; seen {
				// Strictly increasing modulo 2^16.
				if uint16(cur-prev) == 0 || uint16(cur-prev) > 32768 {
					return false
				}
			}
			lastPSN[q] = cur
		}
		// Emission timestamps never decrease.
		for i := 1; i < len(out); i++ {
			if out[i].Time < out[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDispatchReturn(b *testing.B) {
	e := sim.NewEngine()
	p, _ := New(e, Config{NumOrderQueues: 4, QueueDepth: 4096, NumCores: 44}, func(Emission) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, ok := p.Dispatch(uint32(i))
		if ok {
			p.Return(nil, m)
		}
	}
}

// The dispatch/return steady state must not allocate: order-queue timers
// ride pooled engine events through boxed queueRefs, and the round-robin
// cursor and queue selection are arithmetic only.
func TestDispatchReturnZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	p, err := New(e, Config{NumOrderQueues: 4, QueueDepth: 4096, NumCores: 44}, func(Emission) {})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the engine's event pool and the emission path.
	for i := 0; i < 256; i++ {
		if _, m, ok := p.Dispatch(uint32(i)); ok {
			p.Return(nil, m)
		}
	}
	e.Run()
	i := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		_, m, ok := p.Dispatch(i)
		if !ok {
			t.Fatal("dispatch refused in steady state")
		}
		p.Return(nil, m)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Dispatch+Return allocates %v per op, want 0", allocs)
	}
}

// Dispatch must not re-arm the head timer per packet: with an armed timer
// and an unchanged head entry, scheduling stays untouched until the timer
// fires or the queue drains.
func TestDispatchDoesNotRearmTimerPerPacket(t *testing.T) {
	h := newHarness(t, cfg1q(4))
	before := h.e.Pending()
	metas := make([]packet.Meta, 0, 8)
	for i := 0; i < 8; i++ {
		_, m, ok := h.p.Dispatch(7)
		if !ok {
			t.Fatal("dispatch refused")
		}
		metas = append(metas, m)
	}
	// Exactly one head timer exists regardless of queue length.
	if got := h.e.Pending() - before; got != 1 {
		t.Fatalf("pending timers after 8 dispatches = %d, want 1", got)
	}
	for _, m := range metas {
		h.p.Return(nil, m)
	}
	if len(h.out) != 8 {
		t.Fatalf("emitted %d, want 8", len(h.out))
	}
	for i, em := range h.out {
		if !em.InOrder {
			t.Fatalf("emission %d not in order", i)
		}
	}
}

// A non-power-of-two queue count keeps the exact modulo mapping; a
// power-of-two count takes the mask path with the identical result.
func TestOrdQueueForMaskMatchesModulo(t *testing.T) {
	e := sim.NewEngine()
	for _, nq := range []int{1, 2, 3, 4, 5, 7, 8} {
		p, err := New(e, Config{NumOrderQueues: nq, QueueDepth: 64, NumCores: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRand(uint64(nq))
		for i := 0; i < 2000; i++ {
			h := r.Uint32()
			want := uint8(h % uint32(nq))
			if got := p.OrdQueueFor(h); got != want {
				t.Fatalf("nq=%d hash=%#x: OrdQueueFor=%d want %d", nq, h, got, want)
			}
		}
	}
}
