// Package plb implements Albatross's packet-level load balancing: the
// plb_dispatch ingress spray and the plb_reorder egress reordering engine
// (paper §4.1).
//
// Dispatch sprays packets round-robin across a GW pod's CPU cores. Because
// packets of one flow are processed by different cores with different
// latencies, the egress must restore per-flow order. Reordering is done per
// *group of flows*: each pod owns 1–8 order-preserving queues (flow→queue
// by 5-tuple hash), each with three structures of 4K entries:
//
//   - FIFO: reorder info (PSN + ingress timestamp), appended at dispatch.
//     A packet may be transmitted only when its info reaches the head.
//   - BUF:  returned packets, indexed by psn[11:0].
//   - BITMAP: a light mirror of BUF (valid bit + PSN) for O(1) head checks.
//
// The legal check validates returned packets by testing psn[11:0] against
// the [head, tail) window — intentionally allowing rare aliasing of stale
// packets, which the reorder check's PSN comparison (case 3) later catches.
// The reorder check at the FIFO head implements the paper's four cases:
// timeout release (1), busy-wait (2), stale-PSN best-effort send (3), and
// in-order transmit (4). A drop flag in the returned meta releases reorder
// resources immediately, avoiding head-of-line blocking on CPU-side drops.
package plb

import (
	"fmt"
	"math/bits"

	"albatross/internal/errs"
	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Config parameterizes a pod's PLB unit.
type Config struct {
	// NumOrderQueues is the number of order-preserving queues (paper: 1-8,
	// proportional to the pod's core count).
	NumOrderQueues int
	// QueueDepth is entries per queue; power of two, paper value 4096
	// (buffers 100µs at 40Mpps per queue).
	QueueDepth int
	// Timeout releases a blocked FIFO head (paper: 100µs; most services
	// finish under 50µs).
	Timeout sim.Duration
	// HOLThreshold classifies a head wait as a head-of-line blocking event
	// for Fig. 12 accounting. Default 10µs.
	HOLThreshold sim.Duration
	// NumCores is the number of RX data queues/cores to spray across.
	NumCores int
	// PodID tags emitted meta headers.
	PodID uint16
	// PayloadRetained, if set, is consulted when a header-only packet fails
	// the legal check: if the NIC payload buffer no longer retains the
	// payload, the header is dropped instead of sent (paper §4.1). nil
	// means payloads are always retained.
	PayloadRetained func(m packet.Meta, now sim.Time) bool
}

// DefaultConfig returns the paper's production parameters for a pod with
// the given core count: one order queue per ~10 cores (min 1, max 8),
// matching the proportionality rule of internal/pod.
func DefaultConfig(podID uint16, cores int) Config {
	q := (cores + 5) / 10
	if q < 1 {
		q = 1
	}
	if q > 8 {
		q = 8
	}
	return Config{
		NumOrderQueues: q,
		QueueDepth:     4096,
		Timeout:        100 * sim.Microsecond,
		HOLThreshold:   10 * sim.Microsecond,
		NumCores:       cores,
		PodID:          podID,
	}
}

// Emission is a packet leaving the egress pipeline.
type Emission struct {
	Item any
	Meta packet.Meta
	Time sim.Time
	// InOrder is true for case-4 transmissions; false for best-effort
	// (legal-check failure or case-3 stale PSN).
	InOrder bool
}

// Stats are PLB counters. All are cumulative.
type Stats struct {
	Dispatched        uint64 // packets sprayed to cores
	DispatchDrops     uint64 // FIFO full at dispatch (heavy hitter overrun)
	EmittedInOrder    uint64 // case 4
	EmittedBestEffort uint64 // legal-check fail or case 3 (disordered)
	HeaderDrops       uint64 // header-only packet whose payload was gone
	DropFlagReleases  uint64 // resources freed by the active drop flag
	TimeoutReleases   uint64 // case 1: head released after Timeout
	HOLEvents         uint64 // head waits exceeding HOLThreshold
	StaleEmissions    uint64 // case 3 occurrences specifically
	EvictedReleases   uint64 // FIFO entries released by EvictCore (failed core)
	Flushed           uint64 // entries discarded by Flush (pod crash)
	MaskDrops         uint64 // dispatch with every core evicted
}

// DisorderRate returns disordered emissions / all emissions.
func (s *Stats) DisorderRate() float64 {
	total := s.EmittedInOrder + s.EmittedBestEffort
	if total == 0 {
		return 0
	}
	return float64(s.EmittedBestEffort) / float64(total)
}

type reorderInfo struct {
	psn uint16
	// core records which RX queue the packet was sprayed to, so EvictCore
	// can release exactly the entries whose packets died with a core.
	core uint8
	// evicted marks an entry whose core failed before the packet returned:
	// the reorder check releases it immediately instead of waiting out the
	// 100µs timeout (the core-failure degradation path).
	evicted bool
	enq     sim.Time
}

type bufSlot struct {
	valid   bool
	dropped bool // drop flag set by the GW pod
	psn     uint16
	item    any
	meta    packet.Meta
}

// ordQueue is one order-preserving queue: FIFO + BUF + BITMAP. The BITMAP
// of the paper (valid bit + PSN per slot) is folded into bufSlot's valid/psn
// fields; hardware splits them only to keep the comparison memory tiny.
//
// Each queue owns at most one pending engine timer. Head deadlines are
// monotone (FIFO enqueue times, monotone head pointer), so a pending timer
// is never cancelled: it either fires on the head's deadline or fires early
// for an already-advanced head, in which case drain re-arms. timerAt records
// the armed deadline so Dispatch can skip redundant re-arms entirely.
type ordQueue struct {
	head, tail uint16 // free-running PSN pointers; in-flight = tail-head
	info       []reorderInfo
	buf        []bufSlot
	armed      bool
	timerAt    sim.Time
	ref        *queueRef // boxed once at New for allocation-free scheduling

	// Fault-injection stress knobs (see StressQueue). Zero values = healthy.
	holdUntil  sim.Time // while now < holdUntil, heads release only by timeout
	clampUntil sim.Time // while now < clampUntil, effective depth = depthClamp
	depthClamp uint16
}

// queueRef is the engine-callback argument identifying one queue.
type queueRef struct {
	p  *PLB
	qi uint8
}

// queueTimerFire is the engine callback for a queue's head timeout.
func queueTimerFire(arg any) {
	r := arg.(*queueRef)
	r.p.queues[r.qi].armed = false
	r.p.drain(r.qi)
}

// PLB is one GW pod's packet-level load balancing unit.
type PLB struct {
	cfg    Config
	engine *sim.Engine
	emit   func(Emission)
	queues []ordQueue
	mask   uint16
	qmask  uint32 // len(queues)-1 when a power of two, else 0
	qpow2  bool
	rr     int // round-robin core cursor
	// coreUp is the spray mask: Dispatch skips evicted cores. upCount
	// caches the number of true entries.
	coreUp  []bool
	upCount int
	stats   Stats
	// headWait records how long FIFO heads waited before release; feeds the
	// Fig. 11/12 analyses.
	headWait *waitAgg
}

// waitAgg is a tiny mean/max aggregate of FIFO-head wait durations.
type waitAgg struct {
	count uint64
	sum   sim.Duration
	max   sim.Duration
}

func (h *waitAgg) add(d sim.Duration) {
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// New creates a PLB unit. emit is invoked (synchronously, in virtual time)
// for every packet leaving the egress.
func New(engine *sim.Engine, cfg Config, emit func(Emission)) (*PLB, error) {
	if cfg.NumOrderQueues < 1 || cfg.NumOrderQueues > 64 {
		return nil, fmt.Errorf("plb: NumOrderQueues %d out of [1,64]: %w", cfg.NumOrderQueues, errs.BadConfig)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.QueueDepth&(cfg.QueueDepth-1) != 0 || cfg.QueueDepth > 1<<15 {
		return nil, fmt.Errorf("plb: QueueDepth %d must be a power of two <= 32768: %w", cfg.QueueDepth, errs.BadConfig)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 100 * sim.Microsecond
	}
	if cfg.HOLThreshold <= 0 {
		cfg.HOLThreshold = 10 * sim.Microsecond
	}
	if cfg.NumCores <= 0 || cfg.NumCores > 256 {
		return nil, fmt.Errorf("plb: NumCores %d out of [1,256]: %w", cfg.NumCores, errs.BadConfig)
	}
	p := &PLB{
		cfg:      cfg,
		engine:   engine,
		emit:     emit,
		queues:   make([]ordQueue, cfg.NumOrderQueues),
		mask:     uint16(cfg.QueueDepth - 1),
		qpow2:    cfg.NumOrderQueues&(cfg.NumOrderQueues-1) == 0,
		coreUp:   make([]bool, cfg.NumCores),
		upCount:  cfg.NumCores,
		headWait: &waitAgg{},
	}
	for i := range p.coreUp {
		p.coreUp[i] = true
	}
	if p.qpow2 {
		p.qmask = uint32(cfg.NumOrderQueues - 1)
	}
	for i := range p.queues {
		p.queues[i].info = make([]reorderInfo, cfg.QueueDepth)
		p.queues[i].buf = make([]bufSlot, cfg.QueueDepth)
		p.queues[i].ref = &queueRef{p: p, qi: uint8(i)}
	}
	return p, nil
}

// Stats returns a snapshot of the counters.
func (p *PLB) Stats() Stats { return p.stats }

// Config returns the active configuration.
func (p *PLB) Config() Config { return p.cfg }

// InFlight returns the number of packets currently tracked in queue q's
// FIFO.
func (p *PLB) InFlight(q int) int {
	return int(p.queues[q].tail - p.queues[q].head)
}

// windowBits is log2(QueueDepth): the number of PSN bits the legal check
// compares (12 at the paper's 4K depth).
func (p *PLB) windowBits() int { return bits.TrailingZeros16(p.mask + 1) }

// OrdQueueFor returns the order queue index for a flow hash (get_ordq_idx).
// Power-of-two queue counts (the common case, and what hardware uses) take
// the division-free mask path; other counts keep the exact `%` mapping.
func (p *PLB) OrdQueueFor(flowHash uint32) uint8 {
	if p.qpow2 {
		return uint8(flowHash & p.qmask)
	}
	return uint8(flowHash % uint32(len(p.queues)))
}

// Dispatch admits a packet into PLB: it selects the order queue by flow
// hash, assigns the PSN, appends reorder info to the FIFO, and picks the
// next core round-robin. It returns the target core and the meta header to
// attach. ok=false means the FIFO was full and the packet must be dropped
// (the heavy-hitter overrun case, paper constraint C1).
func (p *PLB) Dispatch(flowHash uint32) (core int, meta packet.Meta, ok bool) {
	now := p.engine.Now()
	qi := p.OrdQueueFor(flowHash)
	q := &p.queues[qi]
	depth := uint16(p.cfg.QueueDepth)
	if now < q.clampUntil && q.depthClamp < depth {
		// Reorder-queue stress: the FIFO behaves as if shallower.
		depth = q.depthClamp
	}
	if q.tail-q.head >= depth {
		p.stats.DispatchDrops++
		return 0, packet.Meta{}, false
	}
	if p.upCount == 0 {
		// Every core evicted from the spray mask: nowhere to send.
		p.stats.MaskDrops++
		return 0, packet.Meta{}, false
	}
	psn := q.tail
	q.tail++
	idx := psn & p.mask
	// A fresh FIFO entry must not see a stale BUF slot from 4K PSNs ago.
	q.buf[idx].valid = false
	q.buf[idx].dropped = false

	// Round-robin over the spray mask. With all cores up this consumes the
	// cursor exactly like the unmasked path (one increment per dispatch).
	for {
		core = p.rr
		p.rr++
		if p.rr >= p.cfg.NumCores {
			p.rr = 0
		}
		if p.coreUp[core] {
			break
		}
	}
	q.info[idx] = reorderInfo{psn: psn, core: uint8(core), enq: now}
	p.stats.Dispatched++

	meta = packet.Meta{
		PSN:       psn,
		OrdQ:      qi,
		PodID:     p.cfg.PodID,
		IngressNS: int64(now),
	}
	// The first packet of an idle queue arms the head timer; a non-empty
	// queue already has one pending (its head entry did not change).
	if !q.armed {
		p.armTimer(qi)
	}
	return core, meta, true
}

// inWindow is the legal check: psn's low windowBits bits against [head,
// tail) in modulo-depth arithmetic. head/tail are free-running 16-bit
// counters with tail-head <= depth.
func (p *PLB) inWindow(psn, head, tail uint16) bool {
	inflight := tail - head
	if inflight == 0 {
		return false
	}
	if int(inflight) >= p.cfg.QueueDepth {
		// Full FIFO: every low-bit value aliases into the window.
		return true
	}
	m := p.mask
	pp, h, t := psn&m, head&m, tail&m
	if h < t {
		return pp >= h && pp < t
	}
	return pp >= h || pp < t
}

// Return hands a processed packet back from a CPU core (the TX data queue
// path). The legal check either admits it into BUF/BITMAP or transmits it
// best-effort; then the reorder check drains the FIFO head.
func (p *PLB) Return(item any, meta packet.Meta) {
	p.ReturnAt(item, meta, p.engine.Now())
}

// ReturnAt is Return evaluated at virtual time at <= now: the burst drain
// settles packets whose service finished earlier in the current event, and
// every age/emission computation uses the packet's own finish time so
// outcomes do not depend on when the drain event actually ran.
func (p *PLB) ReturnAt(item any, meta packet.Meta, at sim.Time) {
	now := at
	if int(meta.OrdQ) >= len(p.queues) {
		// Corrupt meta: treat as best-effort.
		p.emitBestEffort(item, meta, now)
		return
	}
	q := &p.queues[meta.OrdQ]
	if !p.inWindow(meta.PSN, q.head, q.tail) {
		// Legal-check failure: a timed-out packet. Best-effort transmit,
		// except header-only packets whose payload is gone.
		if meta.Flags&packet.MetaFlagHeaderOnly != 0 && p.cfg.PayloadRetained != nil &&
			!p.cfg.PayloadRetained(meta, now) {
			p.stats.HeaderDrops++
			return
		}
		if meta.Flags&packet.MetaFlagDrop != 0 {
			// Dropped by the pod and already timed out: nothing to free.
			return
		}
		p.emitBestEffort(item, meta, now)
		p.drainAt(meta.OrdQ, now)
		return
	}
	idx := meta.PSN & p.mask
	slot := &q.buf[idx]
	slot.valid = true
	slot.psn = meta.PSN
	slot.item = item
	slot.meta = meta
	slot.dropped = meta.Flags&packet.MetaFlagDrop != 0
	p.drainAt(meta.OrdQ, now)
}

func (p *PLB) emitBestEffort(item any, meta packet.Meta, now sim.Time) {
	p.stats.EmittedBestEffort++
	if p.emit != nil {
		p.emit(Emission{Item: item, Meta: meta, Time: now, InOrder: false})
	}
}

// drain runs the reorder check at queue qi's FIFO head until it blocks.
func (p *PLB) drain(qi uint8) { p.drainAt(qi, p.engine.Now()) }

// drainAt is drain evaluated at virtual time at (see ReturnAt).
func (p *PLB) drainAt(qi uint8, now sim.Time) {
	q := &p.queues[qi]
	for q.head != q.tail {
		idx := q.head & p.mask
		info := q.info[idx]
		slot := &q.buf[idx]
		age := now.Sub(info.enq)

		if now < q.holdUntil {
			// Forced HOL stress (StressQueue): heads release only via the
			// timeout path while the hold window is active. A packet that
			// did return leaves best-effort — its ordering guarantee is
			// already lost.
			if age < p.cfg.Timeout {
				p.armTimer(qi)
				return
			}
			p.noteHeadWait(age)
			p.stats.TimeoutReleases++
			if slot.valid {
				if !slot.dropped {
					p.emitBestEffort(slot.item, slot.meta, now)
				}
				slot.valid = false
				slot.item = nil
			}
			q.head++
			continue
		}

		switch {
		case slot.valid && slot.psn == info.psn:
			// Case 4 (or a drop-flag release).
			p.noteHeadWait(age)
			if slot.dropped {
				p.stats.DropFlagReleases++
			} else {
				p.stats.EmittedInOrder++
				if p.emit != nil {
					p.emit(Emission{Item: slot.item, Meta: slot.meta, Time: now, InOrder: true})
				}
			}
			slot.valid = false
			slot.item = nil
			q.head++
		case slot.valid && slot.psn != info.psn:
			// Case 3: a stale (timed-out) packet aliased through the legal
			// check. Send it best-effort; keep waiting for the real head.
			p.stats.StaleEmissions++
			p.emitBestEffort(slot.item, slot.meta, now)
			slot.valid = false
			slot.item = nil
			if info.evicted {
				// The true packet died with its core: nothing to wait for.
				p.stats.EvictedReleases++
				q.head++
				continue
			}
			// Do not advance head: the true packet may still arrive.
			if age >= p.cfg.Timeout {
				p.noteHeadWait(age)
				p.stats.TimeoutReleases++
				q.head++
				continue
			}
			p.armTimer(qi)
			return
		default:
			if info.evicted {
				// The spray core failed holding this packet: its return will
				// never come. Release immediately instead of waiting out the
				// 100µs timeout, so a core failure does not become a
				// timeout storm for every tenant sharing the queue.
				p.stats.EvictedReleases++
				q.head++
				continue
			}
			// Case 2: not yet returned.
			if age >= p.cfg.Timeout {
				// Case 1: release the head.
				p.noteHeadWait(age)
				p.stats.TimeoutReleases++
				q.head++
				continue
			}
			p.armTimer(qi)
			return
		}
	}
	// Queue drained: any still-pending timer fires as a harmless no-op on
	// the empty queue, so nothing to cancel.
}

// armTimer schedules the head-timeout event for queue qi. Head deadlines
// are monotone, so an already-armed timer (necessarily at an earlier or
// equal deadline) is kept: it fires, finds the head not yet expired, and
// this function re-arms at the true deadline. Timers are therefore never
// cancelled and Dispatch never reschedules one per packet.
func (p *PLB) armTimer(qi uint8) {
	q := &p.queues[qi]
	if q.head == q.tail || q.armed {
		return
	}
	idx := q.head & p.mask
	deadline := q.info[idx].enq.Add(p.cfg.Timeout)
	now := p.engine.Now()
	if deadline < now {
		deadline = now
	}
	q.armed = true
	q.timerAt = deadline
	p.engine.AtArg(deadline, queueTimerFire, q.ref)
}

func (p *PLB) noteHeadWait(d sim.Duration) {
	p.headWait.add(d)
	if d > p.cfg.HOLThreshold {
		p.stats.HOLEvents++
	}
}

// HeadWaitMean returns the mean FIFO-head wait.
func (p *PLB) HeadWaitMean() sim.Duration {
	if p.headWait.count == 0 {
		return 0
	}
	return p.headWait.sum / sim.Duration(p.headWait.count)
}

// HeadWaitMax returns the maximum observed FIFO-head wait.
func (p *PLB) HeadWaitMax() sim.Duration { return p.headWait.max }

// EvictCore removes core from the spray mask (Dispatch stops selecting it)
// and immediately releases the reorder state of its un-returned in-flight
// packets, so tenants sharing an order queue with a dead core see bounded
// extra disorder instead of a 100µs timeout per lost packet. It returns the
// number of FIFO entries marked lost, bounded by the core's RX queue depth
// plus one (the in-service packet). Evicting an already-evicted or unknown
// core is a no-op.
func (p *PLB) EvictCore(core int) int {
	if core < 0 || core >= len(p.coreUp) || !p.coreUp[core] {
		return 0
	}
	p.coreUp[core] = false
	p.upCount--
	marked := 0
	for qi := range p.queues {
		q := &p.queues[qi]
		for psn := q.head; psn != q.tail; psn++ {
			idx := psn & p.mask
			if q.info[idx].core == uint8(core) && !q.buf[idx].valid && !q.info[idx].evicted {
				q.info[idx].evicted = true
				marked++
			}
		}
		p.drain(uint8(qi))
	}
	return marked
}

// RestoreCore returns an evicted core to the spray mask (the recovery half
// of EvictCore). Restoring a live or unknown core is a no-op.
func (p *PLB) RestoreCore(core int) {
	if core < 0 || core >= len(p.coreUp) || p.coreUp[core] {
		return
	}
	p.coreUp[core] = true
	p.upCount++
}

// CoreUp reports whether core is in the spray mask.
func (p *PLB) CoreUp(core int) bool {
	return core >= 0 && core < len(p.coreUp) && p.coreUp[core]
}

// UpCores returns the number of cores currently in the spray mask.
func (p *PLB) UpCores() int { return p.upCount }

// StressQueue applies reorder-engine stress to order queue q for duration d
// (fault injection). holdHeads forces every FIFO head to wait out the full
// reorder timeout before release (forced HOL / timeout storm); depthClamp,
// when in (0, QueueDepth), shrinks the FIFO's effective capacity so
// dispatches overflow (FIFO-full drops). Both effects expire on their own
// at now+d.
func (p *PLB) StressQueue(q int, d sim.Duration, holdHeads bool, depthClamp int) error {
	if q < 0 || q >= len(p.queues) {
		return fmt.Errorf("plb: stress queue %d out of range [0,%d): %w", q, len(p.queues), errs.BadConfig)
	}
	if d <= 0 {
		return fmt.Errorf("plb: stress duration %v must be positive: %w", d, errs.BadConfig)
	}
	oq := &p.queues[q]
	until := p.engine.Now().Add(d)
	if holdHeads && until > oq.holdUntil {
		oq.holdUntil = until
	}
	if depthClamp > 0 && depthClamp < p.cfg.QueueDepth {
		if until > oq.clampUntil {
			oq.clampUntil = until
		}
		oq.depthClamp = uint16(depthClamp)
	}
	return nil
}

// Flush abandons all reorder state (the abrupt pod-crash path): buffered
// packets are handed to onItem for resource reclamation instead of being
// emitted, every FIFO resets to empty, and stress windows clear. It returns
// the number of FIFO entries discarded. Pending queue timers fire as no-ops
// on the emptied queues.
func (p *PLB) Flush(onItem func(item any, meta packet.Meta)) int {
	flushed := 0
	for qi := range p.queues {
		q := &p.queues[qi]
		for psn := q.head; psn != q.tail; psn++ {
			idx := psn & p.mask
			slot := &q.buf[idx]
			if slot.valid {
				if onItem != nil && !slot.dropped {
					onItem(slot.item, slot.meta)
				}
				slot.valid = false
				slot.item = nil
			}
			flushed++
		}
		q.head = q.tail
		q.holdUntil = 0
		q.clampUntil = 0
		q.depthClamp = 0
	}
	p.stats.Flushed += uint64(flushed)
	return flushed
}
