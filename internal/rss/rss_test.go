package rss

import (
	"testing"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Microsoft RSS verification suite vectors (IPv4 with TCP ports), the
// canonical test set every RSS implementation is validated against.
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		srcIP, dstIP     [4]byte
		srcPort, dstPort uint16
		want             uint32
	}{
		// dst 161.142.100.80:1766 <- src 66.9.149.187:2794
		{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178},
		// dst 65.69.140.83:4739 <- src 199.92.111.2:14230
		{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea},
		// dst 12.22.207.184:38024 <- src 24.19.198.95:12898
		{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0x5c2b394a},
		// dst 209.142.163.6:2217 <- src 38.27.205.30:48228
		{[4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0xafc7327f},
		// dst 202.188.127.2:1303 <- src 153.39.163.191:44251
		{[4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x10e828a2},
	}
	for i, c := range cases {
		f := packet.FiveTuple{
			Src: packet.IPv4Addr(c.srcIP), Dst: packet.IPv4Addr(c.dstIP),
			Proto: packet.IPProtocolTCP, SPort: c.srcPort, DPort: c.dstPort,
		}
		if got := HashTCPv4(DefaultKey[:], f); got != c.want {
			t.Errorf("vector %d: hash = %#08x, want %#08x", i, got, c.want)
		}
	}
}

// IPv4-only (2-tuple) vectors from the same suite.
func TestToeplitzIPOnlyVectors(t *testing.T) {
	cases := []struct {
		src, dst [4]byte
		want     uint32
	}{
		{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 0x323e8fc2},
		{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 0xd718262a},
		{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 0xd2d0a5de},
	}
	for i, c := range cases {
		if got := HashIPv4(DefaultKey[:], packet.IPv4Addr(c.src), packet.IPv4Addr(c.dst)); got != c.want {
			t.Errorf("vector %d: hash = %#08x, want %#08x", i, got, c.want)
		}
	}
}

func TestToeplitzShortKey(t *testing.T) {
	if Toeplitz([]byte{1, 2}, []byte{3}) != 0 {
		t.Fatal("short key should return 0")
	}
}

func TestToeplitzZeroInput(t *testing.T) {
	if Toeplitz(DefaultKey[:], []byte{0, 0, 0, 0}) != 0 {
		t.Fatal("all-zero input must hash to 0")
	}
	if Toeplitz(DefaultKey[:], nil) != 0 {
		t.Fatal("empty input must hash to 0")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(0, 128); err == nil {
		t.Fatal("0 queues accepted")
	}
	if _, err := NewEngine(4, 100); err == nil {
		t.Fatal("non-power-of-two table accepted")
	}
	e, err := NewEngine(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.TableSize() != 128 {
		t.Fatalf("default table size = %d", e.TableSize())
	}
}

func TestEngineFlowAffinity(t *testing.T) {
	e, _ := NewEngine(8, 128)
	f := packet.FiveTuple{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2},
		Proto: packet.IPProtocolTCP, SPort: 1234, DPort: 80,
	}
	q := e.Queue(f)
	for i := 0; i < 100; i++ {
		if e.Queue(f) != q {
			t.Fatal("flow affinity broken")
		}
	}
	if q < 0 || q >= 8 {
		t.Fatalf("queue %d out of range", q)
	}
}

func TestEngineSpreadsFlows(t *testing.T) {
	e, _ := NewEngine(8, 128)
	r := sim.NewRand(1)
	counts := make([]int, 8)
	const flows = 20000
	for i := 0; i < flows; i++ {
		f := packet.FiveTuple{
			Src:   packet.IPv4FromUint32(r.Uint32()),
			Dst:   packet.IPv4FromUint32(r.Uint32()),
			Proto: packet.IPProtocolTCP,
			SPort: uint16(r.Uint32()), DPort: 443,
		}
		counts[e.Queue(f)]++
	}
	for q, c := range counts {
		if c < flows/8*7/10 || c > flows/8*13/10 {
			t.Fatalf("queue %d has %d flows, want ~%d", q, c, flows/8)
		}
	}
}

func TestEngineNonTCPUsesTwoTuple(t *testing.T) {
	e, _ := NewEngine(4, 128)
	// Two ICMP "flows" with different ports must map identically (ports
	// ignored for non-TCP/UDP).
	base := packet.FiveTuple{
		Src: packet.IPv4Addr{1, 2, 3, 4}, Dst: packet.IPv4Addr{5, 6, 7, 8},
		Proto: packet.IPProtocolICMP,
	}
	other := base
	other.SPort, other.DPort = 111, 222
	if e.Queue(base) != e.Queue(other) {
		t.Fatal("ICMP hashing should ignore ports")
	}
}

func TestSetIndirection(t *testing.T) {
	e, _ := NewEngine(4, 8)
	if err := e.SetIndirection([]int{0, 0, 0, 0, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetIndirection([]int{0, 1, 2}); err == nil {
		t.Fatal("odd-size indirection accepted")
	}
	// All queues now 0 or 1.
	r := sim.NewRand(2)
	for i := 0; i < 1000; i++ {
		f := packet.FiveTuple{
			Src:   packet.IPv4FromUint32(r.Uint32()),
			Dst:   packet.IPv4FromUint32(r.Uint32()),
			Proto: packet.IPProtocolUDP,
			SPort: uint16(r.Uint32()), DPort: 53,
		}
		if q := e.Queue(f); q != 0 && q != 1 {
			t.Fatalf("queue %d after reprogramming", q)
		}
	}
}

func TestSetKeyChangesMapping(t *testing.T) {
	e, _ := NewEngine(16, 128)
	r := sim.NewRand(3)
	flows := make([]packet.FiveTuple, 500)
	for i := range flows {
		flows[i] = packet.FiveTuple{
			Src:   packet.IPv4FromUint32(r.Uint32()),
			Dst:   packet.IPv4FromUint32(r.Uint32()),
			Proto: packet.IPProtocolTCP,
			SPort: uint16(r.Uint32()), DPort: 80,
		}
	}
	before := make([]int, len(flows))
	for i, f := range flows {
		before[i] = e.Queue(f)
	}
	var newKey [40]byte
	for i := range newKey {
		newKey[i] = byte(r.Uint32())
	}
	e.SetKey(newKey)
	moved := 0
	for i, f := range flows {
		if e.Queue(f) != before[i] {
			moved++
		}
	}
	if moved < len(flows)/2 {
		t.Fatalf("only %d/%d flows moved after key change", moved, len(flows))
	}
}

func BenchmarkToeplitzHash(b *testing.B) {
	f := packet.FiveTuple{
		Src: packet.IPv4Addr{192, 168, 1, 1}, Dst: packet.IPv4Addr{10, 0, 0, 1},
		Proto: packet.IPProtocolTCP, SPort: 12345, DPort: 443,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashTCPv4(DefaultKey[:], f)
	}
}

func BenchmarkEngineQueue(b *testing.B) {
	e, _ := NewEngine(44, 128)
	f := packet.FiveTuple{
		Src: packet.IPv4Addr{192, 168, 1, 1}, Dst: packet.IPv4Addr{10, 0, 0, 1},
		Proto: packet.IPProtocolTCP, SPort: 12345, DPort: 443,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Queue(f)
	}
}
