// Package rss implements Receive Side Scaling: the flow-level load
// balancing baseline that Albatross's packet-level load balancing (PLB) is
// evaluated against.
//
// RSS hashes the five-tuple with the Microsoft Toeplitz hash and maps the
// result through an indirection table to a queue/core. All packets of a
// flow land on one core — which preserves order for free but lets a single
// heavy-hitter flow overload one core (the paper's Fig. 8 failure mode).
package rss

import (
	"albatross/internal/errs"
	"fmt"

	"albatross/internal/packet"
)

// DefaultKey is the canonical 40-byte Microsoft RSS key used across driver
// ecosystems (and in the Microsoft RSS verification suite).
var DefaultKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the Toeplitz hash of input under key. The hash of the
// i-th input bit, when set, XORs in the 32-bit window of the key starting
// at bit i.
func Toeplitz(key []byte, input []byte) uint32 {
	var result uint32
	// window holds the next 32 key bits aligned at the current input bit.
	if len(key) < 4 {
		return 0
	}
	window := uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
	keyBit := 32 // index of the next key bit to shift in
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				result ^= window
			}
			// Slide the window one bit.
			window <<= 1
			if keyBit < len(key)*8 {
				if key[keyBit/8]&(1<<uint(7-keyBit%8)) != 0 {
					window |= 1
				}
			}
			keyBit++
		}
	}
	return result
}

// HashTCPv4 computes the RSS hash for an IPv4/TCP (or UDP) flow:
// concat(srcIP, dstIP, srcPort, dstPort) per the Microsoft RSS spec.
func HashTCPv4(key []byte, f packet.FiveTuple) uint32 {
	var input [12]byte
	copy(input[0:4], f.Src[:])
	copy(input[4:8], f.Dst[:])
	input[8] = byte(f.SPort >> 8)
	input[9] = byte(f.SPort)
	input[10] = byte(f.DPort >> 8)
	input[11] = byte(f.DPort)
	return Toeplitz(key, input[:])
}

// HashIPv4 computes the 2-tuple RSS hash (srcIP, dstIP) used for non-TCP/UDP
// traffic.
func HashIPv4(key []byte, src, dst packet.IPv4Addr) uint32 {
	var input [8]byte
	copy(input[0:4], src[:])
	copy(input[4:8], dst[:])
	return Toeplitz(key, input[:])
}

// Engine is a configured RSS unit: key + indirection table.
type Engine struct {
	key   [40]byte
	table []int // indirection table: hash LSBs -> queue index
}

// NewEngine creates an RSS engine spreading across nQueues with an
// indirection table of tableSize entries (power of two; 128 is the common
// hardware default).
func NewEngine(nQueues, tableSize int) (*Engine, error) {
	if nQueues <= 0 {
		return nil, fmt.Errorf("rss: nQueues %d must be positive: %w", nQueues, errs.BadConfig)
	}
	if tableSize <= 0 {
		tableSize = 128
	}
	if tableSize&(tableSize-1) != 0 {
		return nil, fmt.Errorf("rss: table size %d must be a power of two: %w", tableSize, errs.BadConfig)
	}
	e := &Engine{key: DefaultKey, table: make([]int, tableSize)}
	for i := range e.table {
		e.table[i] = i % nQueues
	}
	return e, nil
}

// SetKey replaces the hash key.
func (e *Engine) SetKey(key [40]byte) { e.key = key }

// SetIndirection replaces the indirection table (e.g. for rebalancing).
func (e *Engine) SetIndirection(table []int) error {
	if len(table) == 0 || len(table)&(len(table)-1) != 0 {
		return fmt.Errorf("rss: table size %d must be a power of two: %w", len(table), errs.BadConfig)
	}
	e.table = append([]int(nil), table...)
	return nil
}

// TableSize returns the indirection table size.
func (e *Engine) TableSize() int { return len(e.table) }

// Queue returns the RX queue for a flow.
func (e *Engine) Queue(f packet.FiveTuple) int {
	var h uint32
	if f.Proto == packet.IPProtocolTCP || f.Proto == packet.IPProtocolUDP {
		h = HashTCPv4(e.key[:], f)
	} else {
		h = HashIPv4(e.key[:], f.Src, f.Dst)
	}
	return e.table[h&uint32(len(e.table)-1)]
}
