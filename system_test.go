package albatross

import (
	"net"
	"sync"
	"testing"
	"time"

	"albatross/internal/bgp"
	"albatross/internal/packet"
)

// TestFullSystem ties the two planes together the way a deployed Albatross
// server runs: the dataplane (virtual-time node with two GW pods) and the
// control plane (real BGP over loopback TCP: pods -> proxy -> switch).
// A pod failure must withdraw only its routes while the VIP stays
// reachable through the surviving pod, and the surviving pod must keep
// forwarding.
func TestFullSystem(t *testing.T) {
	// ---------- control plane: switch <- proxy <- pods ----------
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking:", err)
	}
	defer swLn.Close()
	sw := bgp.NewSwitch(65000, 0xffff0001)
	go sw.Serve(swLn)
	defer sw.Close()

	upConn, err := net.Dial("tcp", swLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(upConn, 64512, 65000, 0xaa000001)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	podLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer podLn.Close()
	go proxy.Serve(podLn)

	newPodSpeaker := func(id uint32) *BGPSpeaker {
		conn, err := net.Dial("tcp", podLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sp := NewSpeaker(conn, BGPSpeakerConfig{AS: 64512, RouterID: id, PeerAS: 64512})
		if err := sp.Start(); err != nil {
			t.Fatal(err)
		}
		return sp
	}

	// ---------- dataplane: one node, two pods ----------
	node, err := NewNode(NodeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	flows := GenerateFlows(5000, 200, 7)
	sf := ServiceFlows(flows, 0)
	var pods []*PodRuntime
	var speakers []*BGPSpeaker
	vip := BGPPrefix{Addr: packet.IPv4Addr{203, 0, 113, 0}, Len: 24}
	for i := 0; i < 2; i++ {
		pr, err := node.AddPod(PodConfig{
			Spec: PodSpec{Name: string(rune('a' + i)), Service: VPCVPC,
				DataCores: 2, CtrlCores: 1},
			Flows: sf,
		})
		if err != nil {
			t.Fatal(err)
		}
		pods = append(pods, pr)
		sp := newPodSpeaker(uint32(100 + i))
		if err := sp.Announce([]BGPPrefix{vip}, nil); err != nil {
			t.Fatal(err)
		}
		speakers = append(speakers, sp)
	}

	waitRIB := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if sw.RIB().Len() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (rib=%d want=%d)", what, sw.RIB().Len(), want)
	}
	waitRIB(1, "initial VIP advertisement")
	if sw.PeerCount() != 1 {
		t.Fatalf("switch peers = %d, want 1 (proxy aggregation)", sw.PeerCount())
	}

	// The switch ECMPs the VIP's traffic across advertising pods: model as
	// round-robin across pods whose speaker is established.
	var mu sync.Mutex
	alive := []int{0, 1}
	rr := 0
	sink := func(f Flow, bytes int) {
		mu.Lock()
		idx := alive[rr%len(alive)]
		rr++
		mu.Unlock()
		pods[idx].Inject(f, bytes)
	}
	src := &Source{Flows: flows, Rate: ConstantRate(1e6), Seed: 8, Sink: sink}
	if err := src.Start(node.Engine); err != nil {
		t.Fatal(err)
	}
	node.RunFor(20 * Millisecond)
	if pods[0].Tx == 0 || pods[1].Tx == 0 {
		t.Fatalf("both pods should forward: %d / %d", pods[0].Tx, pods[1].Tx)
	}

	// ---------- pod 0 fails ----------
	speakers[0].Close() // session death, no graceful withdraw
	mu.Lock()
	alive = []int{1}
	mu.Unlock()

	// The VIP must survive via pod 1 (refcounted at the proxy).
	time.Sleep(100 * time.Millisecond)
	if sw.RIB().Len() != 1 {
		t.Fatalf("VIP lost after single-pod failure (rib=%d)", sw.RIB().Len())
	}

	before := pods[1].Tx
	node.RunFor(20 * Millisecond)
	if pods[1].Tx <= before {
		t.Fatal("surviving pod stopped forwarding")
	}
	if drops := pods[1].QueueDrops + pods[1].PLBDrops; drops != 0 {
		t.Fatalf("failover overloaded the surviving pod: %d drops", drops)
	}

	// ---------- last pod withdraws: VIP disappears ----------
	if err := speakers[1].Withdraw([]BGPPrefix{vip}); err != nil {
		t.Fatal(err)
	}
	waitRIB(0, "final withdraw")
	speakers[1].Close()
}
