package albatross

import "testing"

// TestPublicAPIQuickstart exercises the facade end to end: the doc-comment
// quick start must actually work.
func TestPublicAPIQuickstart(t *testing.T) {
	node, err := NewNode(NodeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flows := GenerateFlows(5000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw0", Service: VPCInternet, DataCores: 4, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := &Source{Flows: flows, Rate: ConstantRate(1e6), Seed: 2, Sink: pod.Sink()}
	if err := src.Start(node.Engine); err != nil {
		t.Fatal(err)
	}
	node.RunFor(20 * Millisecond)
	src.Stop()
	node.RunFor(Millisecond)

	if pod.Tx == 0 || pod.Tx != pod.Rx {
		t.Fatalf("tx=%d rx=%d", pod.Tx, pod.Rx)
	}
	if pod.Latency.Quantile(0.99) <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestPublicAPIModes(t *testing.T) {
	node, err := NewNode(NodeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flows := GenerateFlows(100, 10, 1)
	for i, mode := range []struct {
		m    any
		name string
	}{{ModePLB, "plb"}, {ModeRSS, "rss"}} {
		spec := PodSpec{Name: names[i], Service: VPCVPC, DataCores: 2, CtrlCores: 1}
		if mode.name == "rss" {
			spec.Mode = ModeRSS
		}
		if _, err := node.AddPod(PodConfig{Spec: spec, Flows: ServiceFlows(flows, 0)}); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
	}
}

var names = []string{"a", "b"}

func TestPublicAPILimiter(t *testing.T) {
	lc := DefaultLimiterConfig()
	node, err := NewNode(NodeConfig{Seed: 1, Limiter: &lc})
	if err != nil {
		t.Fatal(err)
	}
	if node.Limiter == nil {
		t.Fatal("limiter not installed")
	}
}

func TestPublicAPIExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	// 4 tables + 13 figures/ablations registered at minimum.
	if len(exps) < 20 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{"tab3", "tab4", "tab5", "tab6", "fig4", "fig5",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "memfreq", "meta", "stateful", "gopmem"} {
		if !ids[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
	if _, ok := FindExperiment("fig8"); !ok {
		t.Fatal("FindExperiment failed")
	}
}

// TestExperimentShapeChecks runs the cheap experiments through the public
// API (the expensive ones are covered by internal/eval tests and benches).
func TestExperimentShapeChecks(t *testing.T) {
	for _, id := range []string{"tab4", "tab5", "fig7", "fig15", "gopmem"} {
		exp, ok := FindExperiment(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		if r := exp.Run(ExperimentConfig{Seed: 1, Quick: true}); !r.Passed() {
			t.Errorf("%s failed: %v", id, r.FailedChecks())
		}
	}
}
