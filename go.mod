module albatross

go 1.24
