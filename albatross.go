// Package albatross is a reproduction of "Albatross: A Containerized Cloud
// Gateway Platform with FPGA-accelerated Packet-level Load Balancing"
// (SIGCOMM 2025): a cloud gateway built from x86 CPUs and FPGA SmartNICs,
// whose NIC pipeline sprays packets across CPU cores (packet-level load
// balancing, PLB), restores per-flow order in hardware reorder queues,
// and rate-limits overloading tenants with a two-stage meter hierarchy.
//
// This package is the public facade. The building blocks live in
// internal/ and are re-exported here by alias:
//
//   - Node / PodRuntime: a simulated Albatross server with GW pods,
//     driven by a deterministic virtual-time engine.
//   - PLB: the plb_dispatch / plb_reorder engine (FIFO, BUF, BITMAP,
//     legal and reorder checks, 100µs timeout, drop-flag releases).
//   - Limiter: the two-stage tenant overload rate limiter (color_table,
//     meter_table, pre_check/pre_meter with sampling detection).
//   - Speaker / Proxy: a real BGP-4 subset over net.Conn plus the BGP
//     proxy that collapses per-pod eBGP sessions into one per server.
//   - Experiments: drivers that regenerate every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	node, _ := albatross.New(albatross.WithSeed(1))
//	flows := albatross.GenerateFlows(500000, 100000, 1)
//	pod, _ := node.AddPod(albatross.PodConfig{
//		Spec:  albatross.PodSpec{Name: "gw0", Service: albatross.VPCInternet, DataCores: 44, CtrlCores: 2},
//		Flows: albatross.ServiceFlows(flows, 0),
//	})
//	src, _ := albatross.NewSource(
//		albatross.WithFlows(flows),
//		albatross.WithRate(albatross.ConstantRate(5e6)),
//		albatross.WithSink(pod.Sink()),
//	)
//	src.Start(node.Engine)
//	node.RunFor(albatross.Second)
//	fmt.Println(pod.Tx, pod.Latency.Quantile(0.99))
package albatross

import (
	"net"

	"albatross/internal/bgp"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/eval"
	"albatross/internal/gop"
	"albatross/internal/metrics"
	"albatross/internal/packet"
	"albatross/internal/plb"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

// Simulation engine types.
type (
	// Engine is the deterministic virtual-time event engine.
	Engine = sim.Engine
	// Time is a virtual timestamp in nanoseconds.
	Time = sim.Time
	// Duration is a virtual time span in nanoseconds.
	Duration = sim.Duration
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Node types.
type (
	// Node is one Albatross server: NIC pipeline + pods + cores.
	Node = core.Node
	// NodeConfig parameterizes a server.
	NodeConfig = core.NodeConfig
	// PodConfig describes a gateway pod deployment.
	PodConfig = core.PodConfig
	// PodRuntime is a deployed pod's dataplane.
	PodRuntime = core.PodRuntime
	// PipelineStage is one per-stage conservation counter of a pod's staged
	// ingress chain (PodRuntime.Stages).
	PipelineStage = stats.StageCounter
	// ProbeResult is a telemetry probe's per-stage latency breakdown.
	ProbeResult = core.ProbeResult
	// PodSpec names a pod and sizes its cores.
	PodSpec = pod.Spec
	// ServerConfig describes the server hardware.
	ServerConfig = pod.ServerConfig
)

// Observability types (see DESIGN.md §9).
type (
	// Histogram is a log-linear latency histogram (pod latency, per-stage
	// residency).
	Histogram = stats.Histogram
	// MetricsRegistry holds named counter/gauge/histogram series
	// (Node.RegisterMetrics, Cluster.RegisterMetrics).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a registry frozen at one instant; exports as
	// Prometheus text exposition or JSON, byte-identically for a fixed seed.
	MetricsSnapshot = metrics.Snapshot
	// MetricLabel is one name=value pair on a metric series.
	MetricLabel = metrics.Label
	// FlightRecorder samples packet journeys per pod (PodRuntime.Flight).
	FlightRecorder = core.FlightRecorder
	// PacketJourney is one sampled packet's recorded stage timeline.
	PacketJourney = core.Journey
	// JourneyStep is one stage visit of a traced packet.
	JourneyStep = core.TraceStep
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MetricL builds a metric label.
func MetricL(key, value string) MetricLabel { return metrics.L(key, value) }

// StageNames returns the pipeline's stage labels in chain order, aligned
// with PodRuntime.Stages and PodRuntime.StageResidency.
func StageNames() []string { return core.StageNames() }

// Cluster types.
type (
	// Cluster is a multi-node deployment: N servers behind consistent-hash
	// ECMP on one shared engine, each with a modeled BGP uplink.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes a cluster (NewCluster builds it from
	// options; the struct form is cluster.New's input).
	ClusterConfig = cluster.Config
	// ClusterMember is one gateway server of a cluster.
	ClusterMember = cluster.Member
)

// Service types.
type (
	// ServiceType selects a gateway service (VPC-VPC, VPC-Internet, ...).
	ServiceType = service.Type
	// ServiceFlow installs one tenant flow into a pod's tables.
	ServiceFlow = service.Flow
	// ACL is an ordered first-match filter rule list.
	ACL = service.ACL
	// ACLRule is one ACL row.
	ACLRule = service.ACLRule
	// SNAT is the source-NAT engine of the VPC-Internet service.
	SNAT = service.SNAT
)

// IPv4Addr is a dotted-quad address (used by NewSNAT's public IP pool).
type IPv4Addr = packet.IPv4Addr

// ACL actions.
const (
	ACLPermit = service.ACLPermit
	ACLDeny   = service.ACLDeny
)

// Gateway services (paper Tab. 2).
const (
	VPCVPC          = service.VPCVPC
	VPCInternet     = service.VPCInternet
	VPCIDC          = service.VPCIDC
	VPCCloudService = service.VPCCloudService
)

// Load-balancing modes.
const (
	// ModePLB sprays packets across cores with FPGA reordering.
	ModePLB = pod.ModePLB
	// ModeRSS hashes flows to cores (the 1st-gen baseline).
	ModeRSS = pod.ModeRSS
)

// Workload types.
type (
	// Flow is one tenant flow.
	Flow = workload.Flow
	// Source is a Poisson arrival process over a flow set.
	Source = workload.Source
	// RateFn is a time-varying offered rate.
	RateFn = workload.RateFn
)

// PLB types.
type (
	// PLB is a pod's packet-level load balancing unit.
	PLB = plb.PLB
	// PLBConfig parameterizes dispatch/reorder.
	PLBConfig = plb.Config
	// PLBStats are the PLB counters (drops, HOL events, disorder).
	PLBStats = plb.Stats
)

// Overload protection types.
type (
	// Limiter is the two-stage tenant overload rate limiter.
	Limiter = gop.Limiter
	// LimiterConfig parameterizes it.
	LimiterConfig = gop.Config
)

// BGP types.
type (
	// BGPSpeaker is one endpoint of a BGP-4 session over a net.Conn.
	BGPSpeaker = bgp.Speaker
	// BGPSpeakerConfig configures a speaker.
	BGPSpeakerConfig = bgp.SpeakerConfig
	// BGPProxy aggregates pod iBGP sessions into one eBGP upstream.
	BGPProxy = bgp.Proxy
	// BGPPrefix is an IPv4 NLRI prefix.
	BGPPrefix = bgp.Prefix
	// UplinkSession is the deterministic virtual-time model of a
	// gateway↔switch BGP session guarded by BFD (fault-injection runs).
	UplinkSession = bgp.SimSession
	// UplinkConfig parameterizes it.
	UplinkConfig = bgp.SimSessionConfig
	// UplinkStats are its counters (flaps, detections, downtime).
	UplinkStats = bgp.SimSessionStats
)

// Experiment types.
type (
	// Experiment regenerates one paper table or figure.
	Experiment = eval.Experiment
	// ExperimentConfig controls scale and seeding.
	ExperimentConfig = eval.Config
	// ExperimentResult holds the regenerated table and shape checks.
	ExperimentResult = eval.Result
)

// NewNode creates an Albatross server simulation.
func NewNode(cfg NodeConfig) (*Node, error) { return core.NewNode(cfg) }

// NewSpeaker wraps a connected net.Conn as a BGP session endpoint.
func NewSpeaker(conn net.Conn, cfg BGPSpeakerConfig) *BGPSpeaker {
	return bgp.NewSpeaker(conn, cfg)
}

// NewProxy creates a BGP proxy with its eBGP upstream on conn.
func NewProxy(upstream net.Conn, localAS, switchAS uint16, routerID uint32) (*BGPProxy, error) {
	return bgp.NewProxy(upstream, localAS, switchAS, routerID)
}

// GenerateFlows deterministically creates n flows across the given number
// of tenants.
func GenerateFlows(n, tenants int, seed uint64) []Flow {
	return workload.GenerateFlows(n, tenants, seed)
}

// ServiceFlows converts workload flows to the pod-table install format.
func ServiceFlows(flows []Flow, deniedFrac float64) []ServiceFlow {
	return workload.ServiceFlows(flows, deniedFrac)
}

// ConstantRate offers a fixed packet rate.
func ConstantRate(pps float64) RateFn { return workload.ConstantRate(pps) }

// StepRate switches from one rate to another at a virtual time.
func StepRate(before, after float64, at Time) RateFn {
	return workload.StepRate(before, after, at)
}

// Microburst overlays periodic bursts on a base rate.
func Microburst(base RateFn, factor float64, period, burstLen Duration) RateFn {
	return workload.Microburst(base, factor, period, burstLen)
}

// DefaultLimiterConfig returns the paper's production two-stage limiter.
func DefaultLimiterConfig() LimiterConfig { return gop.DefaultConfig() }

// NewACL creates an ACL with the given default action.
func NewACL(defaultAction service.ACLAction) *ACL { return service.NewACL(defaultAction) }

// NewSNAT creates a source-NAT engine over a public IP pool.
func NewSNAT(publicIPs []IPv4Addr, portLo, portHi uint16, maxSessions int, idle Duration) (*SNAT, error) {
	return service.NewSNAT(publicIPs, portLo, portHi, maxSessions, idle)
}

// Experiments lists every registered paper-reproduction experiment.
func Experiments() []Experiment { return eval.Experiments() }

// FindExperiment returns the experiment with the given ID (e.g. "fig8").
func FindExperiment(id string) (Experiment, bool) { return eval.Find(id) }
