package albatross

import "albatross/internal/scenario"

// Scenario is a declarative gameday drill: a fleet to deploy, a workload
// to offer, a timed script of faults and ramps, and an assertions block
// evaluated after the run. Scenarios load from a strict YAML subset
// (unknown keys are errors, wrapping ErrBadConfig) and execute
// deterministically — the Result's Report and Outcome are byte-identical
// across repeat runs and across shard counts at a fixed seed.
type (
	Scenario              = scenario.Scenario
	ScenarioFleet         = scenario.Fleet
	ScenarioWorkload      = scenario.Workload
	ScenarioEvent         = scenario.Event
	ScenarioAction        = scenario.Action
	ScenarioAssertion     = scenario.Assertion
	ScenarioOverrides     = scenario.Overrides
	ScenarioResult        = scenario.Result
	ScenarioCheck         = scenario.Check
	ScenarioObservability = scenario.Observability
)

// Scripted event actions.
const (
	ScenarioInject     = scenario.ActionInject
	ScenarioDrain      = scenario.ActionDrain
	ScenarioFlap       = scenario.ActionFlap
	ScenarioRamp       = scenario.ActionRamp
	ScenarioSpecUpdate = scenario.ActionSpecUpdate
)

// LoadScenario parses and validates a scenario document. Every parse or
// schema error wraps ErrBadConfig and names the offending line.
func LoadScenario(data []byte) (*Scenario, error) { return scenario.Load(data) }

// LoadScenarioFile reads, parses, and validates a scenario file.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }
