package albatross

import (
	"albatross/internal/controlplane"
	"albatross/internal/scenario"
)

// Control-plane types (see DESIGN.md §15). A ClusterSpec declares the
// desired fleet state — one MemberSpec per member slot — and a Reconciler
// diffs it against the observed cluster every virtual-time tick, emitting
// a deterministic, rate-limited train of make-before-break steps (drain
// before remove, add then shift canary weight, one-pod-at-a-time scaling)
// through the cluster's lifecycle APIs.
type (
	// ClusterSpec is the desired state of a cluster: one entry per member
	// slot, in slot order.
	ClusterSpec = controlplane.ClusterSpec
	// MemberSpec is the desired state of one member slot (ECMP weight,
	// pod count, admin state, flow-table backend).
	MemberSpec = controlplane.MemberSpec
	// Reconciler drives a Cluster toward a ClusterSpec, one rate-limited
	// step per tick.
	Reconciler = controlplane.Reconciler
	// ReconcilerConfig sets the reconcile tick interval and per-tick step
	// budget.
	ReconcilerConfig = controlplane.Config
	// ReconcileStep is one applied (or planned) reconcile action.
	ReconcileStep = controlplane.Step
	// ReconcileSpec is the scenario-file form of a ClusterSpec plus
	// reconciler tuning; it loads from the same strict YAML subset as
	// scenarios (LoadSpec / LoadSpecFile, or a scenario's spec: block).
	ReconcileSpec = scenario.ReconcileSpec
)

// Member admin states (MemberSpec.Admin).
const (
	// AdminUp serves traffic (the default for an empty Admin).
	AdminUp = controlplane.AdminUp
	// AdminDrained withdraws the member's route but keeps it warm.
	AdminDrained = controlplane.AdminDrained
	// AdminRemoved retires the member slot permanently (terminal; the
	// reconciler drains first and removes only after a full-tick soak).
	AdminRemoved = controlplane.AdminRemoved
)

// NewReconciler attaches a desired-state reconciler to a cluster and arms
// its tick loop on the cluster engine. The spec must cover every existing
// member. The reconciler registers itself as the cluster's controller.
func NewReconciler(c *Cluster, spec ClusterSpec, cfg ReconcilerConfig) (*Reconciler, error) {
	return controlplane.NewReconciler(c, spec, cfg)
}

// LoadSpec parses and validates a standalone desired-state document (a
// spec: block at top level). Every parse or schema error wraps
// ErrBadConfig and names the offending line.
func LoadSpec(data []byte) (*ReconcileSpec, error) { return scenario.LoadSpec(data) }

// LoadSpecFile reads, parses, and validates a desired-state file.
func LoadSpecFile(path string) (*ReconcileSpec, error) { return scenario.LoadSpecFile(path) }
