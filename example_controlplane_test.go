package albatross_test

import (
	"errors"
	"fmt"
	"strings"

	"albatross"
)

// ExampleLoadSpec parses a standalone desired-state document — the same
// strict YAML dialect as scenario files, holding just the spec: block's
// keys at top level.
func ExampleLoadSpec() {
	doc := `
interval: 2ms
members:
  - default
  - weight: 0.25
    pods: 2
  - admin: drained
`
	spec, err := albatross.LoadSpec([]byte(doc))
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Interval, spec.ClusterSpec())
	// Output:
	// 2ms spec[3]{0: w=1; 1: w=0.25 pods=2; 2: w=1 drained}
}

// ExampleLoadSpec_strict shows that spec documents reject unknown keys and
// semantic violations at load time, wrapping ErrBadConfig with the
// offending line.
func ExampleLoadSpec_strict() {
	doc := "members:\n  - weight: 1.0\n    wieght: 2.0\n"
	_, err := albatross.LoadSpec([]byte(doc))
	fmt.Println(errors.Is(err, albatross.ErrBadConfig))
	fmt.Println(strings.Contains(err.Error(), "line 3"))
	// Output:
	// true
	// true
}

// ExampleWithSpec deploys a cluster under the desired-state reconciler:
// the spec declares one more member than the fleet, so the reconcile loop
// grows the cluster, one rate-limited step per tick.
func ExampleWithSpec() {
	spec, err := albatross.LoadSpec([]byte(
		"interval: 1ms\nmembers:\n  - default\n  - default\n  - weight: 0.5\n"))
	if err != nil {
		panic(err)
	}
	c, err := albatross.NewCluster(
		albatross.WithSeed(1),
		albatross.WithNodes(2),
		albatross.WithSpec(spec),
	)
	if err != nil {
		panic(err)
	}
	r := c.Controller().(*albatross.Reconciler)
	c.RunFor(10 * albatross.Millisecond)
	fmt.Println(r.Summary())
	for _, s := range r.Steps() {
		fmt.Println(s)
	}
	// Output:
	// reconciler: 10 ticks, 2 steps, converged
	// 1ms node=2 add
	// 2ms node=2 weight 1 -> 0.5
}
