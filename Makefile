GO ?= go

.PHONY: all build test vet race bench fmt-check metrics-check replay-check fleet-check gameday concury-check series-check reconcile-check ci clean

all: build test

# Fails if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The full gate: build, vet, formatting, unit tests, then the race-checked
# packages. Runs staticcheck too when it is installed.
ci: build vet fmt-check test race metrics-check replay-check fleet-check gameday concury-check series-check reconcile-check
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@echo "ci: all checks passed"

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Race-checks the packages with intentional cross-goroutine sharing (the
# eval worker pool and the shared/sharded session tables) plus the packet
# path itself: the node pipeline and the multi-node cluster layer.
# The race detector slows the eval experiments ~10x, so the default 10m
# per-package test timeout is not enough headroom.
race:
	$(GO) test -race -timeout 30m ./internal/sim/ ./internal/eval/ ./internal/flowtable/ ./internal/cluster/ ./internal/core/ ./internal/workload/trace/ ./internal/scenario/ ./internal/metrics/ ./internal/controlplane/ ./internal/bgp/

# Runs the packet-path microbenchmarks (single node and the 3-node /
# 8-node / sharded cluster variants) and records ns/op, B/op and allocs/op
# for each as a JSON array in BENCH_packetpath.json for tracking across
# commits. The 3s benchtime amortizes process cold-start so recorded
# numbers are stable. The guard test runs first, against the *committed*
# baseline: it re-measures BenchmarkClusterPath and fails the target if the
# single-engine cluster path regressed more than 10%.
bench:
	ALBATROSS_BENCH_GUARD=1 $(GO) test -run '^TestBenchGuard$$' -benchtime 3s -v .
	$(GO) test -run '^$$' -bench 'BenchmarkPacketPath|BenchmarkClusterPath' -benchtime 3s -benchmem . | tee /dev/stderr | \
	awk 'BEGIN { n = 0 } \
	/^Benchmark(Packet|Cluster)Path/ { \
		if (n++) printf ",\n"; else printf "[\n"; \
		printf "  {\n    \"benchmark\": \"%s\",\n    \"ns_per_op\": %s,\n    \"bytes_per_op\": %s,\n    \"allocs_per_op\": %s\n  }", \
			$$1, $$3, $$5, $$7 } \
	END { if (n) printf "\n]\n" }' > BENCH_packetpath.json
	@cat BENCH_packetpath.json

# Determinism gate for the metrics export: the same fixed-seed run, twice,
# must write byte-for-byte identical Prometheus and JSON snapshots — at any
# parallelism, on both the single-node and cluster paths.
metrics-check: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) run ./cmd/albatross-sim -flows 20000 -rate 1e6 -duration 50ms -seed 7 -metrics-out $$tmp/n1 >/dev/null 2>&1; \
	$(GO) run ./cmd/albatross-sim -flows 20000 -rate 1e6 -duration 50ms -seed 7 -metrics-out $$tmp/n2 >/dev/null 2>&1; \
	cmp $$tmp/n1.prom $$tmp/n2.prom && cmp $$tmp/n1.json $$tmp/n2.json || rc=1; \
	$(GO) run ./cmd/albatross-sim -nodes 3 -flows 20000 -rate 1e6 -duration 50ms -seed 7 -metrics-out $$tmp/c1 >/dev/null 2>&1; \
	$(GO) run ./cmd/albatross-sim -nodes 3 -flows 20000 -rate 1e6 -duration 50ms -seed 7 -metrics-out $$tmp/c2 >/dev/null 2>&1; \
	cmp $$tmp/c1.prom $$tmp/c2.prom && cmp $$tmp/c1.json $$tmp/c2.json || rc=1; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "metrics-check: exports differ across identical runs"; exit 1; fi; \
	echo "metrics-check: single-node and cluster exports byte-identical"

# Replay-fidelity gate: record a short fixed-seed cluster run into a trace,
# replay the trace against a freshly built identical cluster, and require the
# metrics exports and per-node outcome reports to match byte for byte.
replay-check: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) run ./cmd/albatross-sim -nodes 3 -flows 5000 -rate 5e5 -duration 30ms -seed 7 \
		-record $$tmp/run.trace -metrics-out $$tmp/rec -outcome-out $$tmp/rec.outcome >/dev/null 2>&1; \
	$(GO) run ./cmd/albatross-sim -nodes 3 -flows 5000 -rate 5e5 -duration 30ms -seed 7 \
		-replay $$tmp/run.trace -metrics-out $$tmp/rep -outcome-out $$tmp/rep.outcome >/dev/null 2>&1; \
	cmp $$tmp/rec.prom $$tmp/rep.prom && cmp $$tmp/rec.json $$tmp/rep.json || rc=1; \
	$(GO) run ./cmd/albatross-sim -replay-diff $$tmp/rec.outcome,$$tmp/rep.outcome >/dev/null || rc=1; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "replay-check: replay diverged from the recorded run"; exit 1; fi; \
	echo "replay-check: replayed run byte-identical to the recorded run"

# Region-scale smoke gate: a 1000-node cluster run completes under a tight
# wall-clock budget, and its stdout is byte-identical on the single shared
# engine (-shards 1) and on four shard engines (-shards 4) — the sharded
# execution tentpole at fleet width. The 1MB cache model keeps 1000-node
# construction cheap; a NodeCrash mid-run exercises the cross-shard fault
# sync path at scale.
FLEET_FLAGS = -nodes 1000 -cache-mb 1 -flows 10000 -rate 2e6 -duration 30ms -seed 3 \
	-fault nodecrash@10ms,node=17,dur=40ms
fleet-check: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) build -o $$tmp/asim ./cmd/albatross-sim; \
	timeout 240 $$tmp/asim $(FLEET_FLAGS) -shards 1 > $$tmp/s1.txt 2>/dev/null || rc=1; \
	timeout 240 $$tmp/asim $(FLEET_FLAGS) -shards 4 > $$tmp/s4.txt 2>/dev/null || rc=1; \
	cmp $$tmp/s1.txt $$tmp/s4.txt || rc=1; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "fleet-check: 1000-node run failed or diverged across shard counts"; exit 1; fi; \
	echo "fleet-check: 1000-node output byte-identical at shards=1 and shards=4"

# Gameday gate: every committed scenario must validate, run with all of
# its declared assertions passing, and print byte-identical stdout on a
# repeat run (the per-scenario assertions already cover shard-count and
# replay identity where the scenario declares them).
gameday: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) build -o $$tmp/asim ./cmd/albatross-sim; \
	$$tmp/asim validate scenarios/*.yaml || rc=1; \
	for f in scenarios/*.yaml; do \
		name=$$(basename $$f .yaml); \
		timeout 240 $$tmp/asim run $$f > $$tmp/$$name.1 2>/dev/null || { echo "gameday: $$f FAILED"; rc=1; continue; }; \
		timeout 240 $$tmp/asim run $$f > $$tmp/$$name.2 2>/dev/null || { echo "gameday: $$f FAILED on repeat"; rc=1; continue; }; \
		cmp -s $$tmp/$$name.1 $$tmp/$$name.2 || { echo "gameday: $$f stdout differs across repeat runs"; rc=1; continue; }; \
		tail -1 $$tmp/$$name.1; \
	done; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "gameday: scenario gate failed"; exit 1; fi; \
	echo "gameday: all scenarios passed, stdout repeat-identical"

# Flow-table backend gate: the concury experiment in quick mode — backend
# assignment agreement, zero-disruption pool updates, the session-vs-othello
# memory cost ratio, and cluster byte-identity at shards 1 and 4 with the
# othello backend and burst dispatch enabled. albatross-bench exits non-zero
# when any shape check fails.
concury-check:
	@$(GO) run ./cmd/albatross-bench -exp concury -quick >/dev/null || \
		{ echo "concury-check: experiment checks failed (run: go run ./cmd/albatross-bench -exp concury -quick)"; exit 1; }
	@echo "concury-check: othello/session backend checks passed"

# Control-plane gate: the reconcile drills run through the dedicated
# `reconcile` subcommand — the desired-state reconciler sequences every
# canary weight shift, rolling drain, and fleet reshape over real eBGP
# proxy sessions, and each scenario's own assertions demand zero loss,
# convergence within one snapshot tick, and byte identity across shard
# counts (and record<->replay where declared). A -plan dry run smokes the
# diff path too.
reconcile-check: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) build -o $$tmp/asim ./cmd/albatross-sim; \
	for f in scenarios/reconcile-canary.yaml scenarios/reconcile-drain.yaml scenarios/reconcile-scale.yaml; do \
		timeout 240 $$tmp/asim reconcile $$f > $$tmp/out 2>/dev/null \
			|| { echo "reconcile-check: $$f FAILED"; rc=1; continue; }; \
		tail -1 $$tmp/out; \
	done; \
	$$tmp/asim reconcile -plan scenarios/reconcile-canary.yaml >/dev/null || rc=1; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "reconcile-check: control-plane gate failed"; exit 1; fi; \
	echo "reconcile-check: reconcile drills converged loss-free"

# Timeline determinism gate: the convergence drill's sampled series must
# export byte-for-byte identical CSV and JSON across a repeat run, across
# shard counts (1 vs 3), and across dispatch burst sizes (per-packet vs
# burst 8) — the three axes the timeline's tick-boundary epoch barrier
# promises not to perturb.
series-check: build
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) build -o $$tmp/asim ./cmd/albatross-sim; \
	for v in "base -series-out XX/a" "repeat -series-out XX/b" "shards -shards 3 -series-out XX/c" "burst -burst 8 -series-out XX/d"; do \
		set -- $$v; name=$$1; shift; \
		timeout 240 $$tmp/asim run $$(echo "$$@" | sed "s|XX|$$tmp|g") scenarios/convergence-drill.yaml >/dev/null 2>&1 \
			|| { echo "series-check: $$name run failed"; rc=1; }; \
	done; \
	for f in b c d; do \
		cmp $$tmp/a.csv $$tmp/$$f.csv && cmp $$tmp/a.json $$tmp/$$f.json \
			|| { echo "series-check: series export $$f diverged from base"; rc=1; }; \
	done; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "series-check: timeline exports not byte-identical"; exit 1; fi; \
	echo "series-check: series byte-identical across repeat, shards 1/3, burst 1/8"

clean:
	rm -f BENCH_packetpath.json albatross-bench
