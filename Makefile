GO ?= go

.PHONY: all build test vet race bench fmt-check ci clean

all: build test

# Fails if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The full gate: build, vet, formatting, unit tests, then the race-checked
# packages. Runs staticcheck too when it is installed.
ci: build vet fmt-check test race
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@echo "ci: all checks passed"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-checks the packages with intentional cross-goroutine sharing: the
# eval worker pool and the shared/sharded session tables.
race:
	$(GO) test -race ./internal/eval/ ./internal/flowtable/

# Runs the packet-path microbenchmark and records ns/op, B/op and
# allocs/op in BENCH_packetpath.json for tracking across commits.
bench:
	$(GO) test -run '^$$' -bench BenchmarkPacketPath -benchmem . | tee /dev/stderr | \
	awk '/^BenchmarkPacketPath/ { \
		printf "{\n  \"benchmark\": \"%s\",\n  \"ns_per_op\": %s,\n  \"bytes_per_op\": %s,\n  \"allocs_per_op\": %s\n}\n", \
			$$1, $$3, $$5, $$7 }' > BENCH_packetpath.json
	@cat BENCH_packetpath.json

clean:
	rm -f BENCH_packetpath.json albatross-bench
