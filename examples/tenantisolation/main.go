// Tenant isolation demo (the paper's Fig. 13/14 scenario): four tenants
// share a gateway pod; tenant 1 suddenly bursts far past the pod's
// capacity. Without the two-stage overload rate limiter everyone suffers
// indiscriminate loss; with it, tenant 1 is clamped in the NIC pipeline
// and the other tenants never notice.
package main

import (
	"fmt"
	"log"

	"albatross"
)

const (
	podCapacity = 350e3 // pps, roughly; see cmd/albatross-bench -exp fig13
	stepAt      = 500 * albatross.Millisecond
	runFor      = 1000 * albatross.Millisecond
)

func run(withLimiter bool) {
	opts := []albatross.Option{albatross.WithSeed(5)}
	if withLimiter {
		lc := albatross.DefaultLimiterConfig()
		lc.Stage1Rate = 0.4 * podCapacity
		lc.Stage2Rate = 0.1 * podCapacity
		opts = append(opts, albatross.WithLimiter(lc))
	}
	node, err := albatross.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	// Four tenants, each with its own flows.
	var all []albatross.ServiceFlow
	tenantFlows := make([][]albatross.Flow, 4)
	for i := range tenantFlows {
		fl := albatross.GenerateFlows(20000, 1, uint64(10+i))
		for j := range fl {
			fl[j].VNI = uint32(i + 1)
		}
		tenantFlows[i] = fl
		all = append(all, albatross.ServiceFlows(fl, 0)...)
	}

	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 2, CtrlCores: 1},
		Flows:      all,
		MemoryMult: 8, // slow the cores so the pod tops out near podCapacity
		QueueDepth: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offered rates: 20/15/10/5% of capacity; tenant 1 bursts to 170%.
	rates := []albatross.RateFn{
		albatross.StepRate(0.20*podCapacity, 1.70*podCapacity, albatross.Time(stepAt)),
		albatross.ConstantRate(0.15 * podCapacity),
		albatross.ConstantRate(0.10 * podCapacity),
		albatross.ConstantRate(0.05 * podCapacity),
	}
	for i := range rates {
		src := &albatross.Source{Flows: tenantFlows[i], Rate: rates[i],
			Seed: uint64(20 + i), Sink: pod.Sink()}
		if err := src.Start(node.Engine); err != nil {
			log.Fatal(err)
		}
	}

	title := "WITHOUT overload rate limiting (Fig. 13)"
	if withLimiter {
		title = "WITH two-stage overload rate limiting (Fig. 14)"
	}
	fmt.Println(title)
	fmt.Printf("%6s  %8s %8s %8s %8s\n", "t(ms)", "T1 Kpps", "T2 Kpps", "T3 Kpps", "T4 Kpps")

	window := 100 * albatross.Millisecond
	prev := make([]uint64, 5)
	for now := albatross.Duration(0); now < runFor; now += window {
		node.RunFor(window)
		fmt.Printf("%6.0f", node.Engine.Now().Seconds()*1000)
		for t := 1; t <= 4; t++ {
			cur := pod.TxPerTenant[uint32(t)]
			fmt.Printf("  %8.1f", float64(cur-prev[t])/window.Seconds()/1e3)
			prev[t] = cur
		}
		fmt.Println()
	}
	fmt.Println()
}

func main() {
	run(false)
	run(true)
	fmt.Println("without GOP the burst starves every tenant; with the two-stage")
	fmt.Println("limiter the NIC pipeline clamps tenant 1 before the CPU and")
	fmt.Println("tenants 2-4 keep their full rates.")
}
