// Fault drill: a scripted gameday against one gateway node. A deterministic
// FaultPlan stalls and then kills a CPU core, crashes the primary pod, and
// flaps the BGP uplink — while the degradation machinery (PLB spray-mask
// eviction, sibling redirection, BFD detection with proxy re-advertisement)
// keeps the damage bounded. Because faults fire on virtual time from seeded
// generators, every run of this drill prints exactly the same numbers.
package main

import (
	"fmt"
	"log"

	"albatross"
)

func main() {
	// The schedule: stall core 2 at t=20ms (sick, 100x service time),
	// kill it at t=25ms for 10ms, crash pod 0 at t=60ms (restarts after
	// 20ms), and take the uplink down for 400ms at t=120ms.
	plan := (&albatross.FaultPlan{}).
		CoreStall(20*albatross.Millisecond, 0, 2, 100, 5*albatross.Millisecond).
		CoreFail(25*albatross.Millisecond, 0, 2, 10*albatross.Millisecond).
		PodCrash(60*albatross.Millisecond, 0, 20*albatross.Millisecond).
		BGPFlap(120*albatross.Millisecond, 400*albatross.Millisecond)

	node, err := albatross.New(
		albatross.WithSeed(7),
		albatross.WithFaultPlan(plan),
	)
	if err != nil {
		log.Fatal(err)
	}
	// BFD-guarded uplink with the BGP proxy: after detection the proxy
	// re-advertises, so traffic is only blackholed during the ~150ms
	// detection window.
	if _, err := node.EnableUplink(true); err != nil {
		log.Fatal(err)
	}

	flows := albatross.GenerateFlows(5000, 500, 7)
	sf := albatross.ServiceFlows(flows, 0)
	addPod := func(name string) *albatross.PodRuntime {
		p, err := node.AddPod(albatross.PodConfig{
			Spec: albatross.PodSpec{Name: name, Service: albatross.VPCVPC,
				DataCores: 4, CtrlCores: 1, Mode: albatross.ModePLB},
			Flows: sf,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	primary := addPod("gw0")
	sibling := addPod("gw1") // absorbs redirected tenants during the crash

	src := &albatross.Source{
		Flows: flows,
		Rate:  albatross.ConstantRate(1e6),
		Seed:  8,
		Sink:  primary.Sink(),
	}
	if err := src.Start(node.Engine); err != nil {
		log.Fatal(err)
	}
	node.RunFor(2 * albatross.Second)
	src.Stop()
	node.RunFor(5 * albatross.Millisecond)

	fmt.Println("fault log:")
	for _, e := range node.FaultLog() {
		fmt.Println(" ", e)
	}
	fmt.Printf("\nprimary: rx=%d tx=%d lost-to-faults=%d redirected=%d restarts=%d state=%s\n",
		primary.Rx, primary.Tx, primary.FaultLost, primary.Redirected, primary.Restarts, primary.State())
	fmt.Printf("sibling: rx=%d tx=%d\n", sibling.Rx, sibling.Tx)
	s := primary.PLB.Stats()
	fmt.Printf("plb:     evicted-releases=%d timeouts=%d disorder=%.2e\n",
		s.EvictedReleases, s.TimeoutReleases, s.DisorderRate())
	up := node.Uplink().Stats()
	fmt.Printf("uplink:  detections=%d detect-latency=%.0fms blackholed=%d proxied=%d downtime=%.0fms\n",
		up.Detections, float64(up.LastDetectNS)/1e6, node.Blackholed, node.Proxied,
		float64(up.DownTime)/1e6)

	// Clean shutdown through the lifecycle API: drain both pods, then
	// close the node.
	if err := node.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter close: primary=%s sibling=%s\n", primary.State(), sibling.State())
}
