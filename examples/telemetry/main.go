// Telemetry demo: Zoonet-style probe packets measure the per-stage latency
// of a loaded gateway pod (NIC ingress, RX queue wait, service processing,
// NIC egress), and the node report shows the operator's dashboard view.
// Probes ride the RSS path, exactly like the stateful specials the paper's
// pkt_dir keeps away from PLB (§3.2).
package main

import (
	"fmt"
	"log"

	"albatross"
)

func main() {
	node, err := albatross.New(albatross.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	flows := albatross.GenerateFlows(50000, 5000, 11)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCInternet,
			DataCores: 4, CtrlCores: 2},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Probe totals across all load points, for the probe-vs-pipeline
	// comparison at the end.
	var probeIn, probeOut albatross.Duration
	var probeN int

	// Drive the pod at three load points and probe at each.
	for _, load := range []float64{0.2, 0.6, 0.9} {
		capacityMpps := 4 * 0.9 // rough per-core Mpps at this scale
		rate := load * capacityMpps * 1e6
		src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(rate),
			Seed: 12, Sink: pod.Sink()}
		if err := src.Start(node.Engine); err != nil {
			log.Fatal(err)
		}
		node.RunFor(20 * albatross.Millisecond) // warm up the queues

		var agg albatross.ProbeResult
		probes := 0
		for i := 0; i < 20; i++ {
			f := flows[i*7]
			node.Engine.After(albatross.Duration(i)*100*albatross.Microsecond, func() {
				pod.InjectProbe(f, func(r albatross.ProbeResult) {
					if r.Dropped {
						return
					}
					probes++
					agg.NICIngress += r.NICIngress
					agg.QueueWait += r.QueueWait
					agg.Service += r.Service
					agg.NICEgress += r.NICEgress
					agg.Total += r.Total
				})
			})
		}
		node.RunFor(10 * albatross.Millisecond)
		src.Stop()
		node.RunFor(5 * albatross.Millisecond) // drain

		if probes == 0 {
			log.Fatal("no probes returned")
		}
		d := albatross.Duration(probes)
		fmt.Printf("load %.0f%%: nic-in=%v queue=%v service=%v nic-out=%v total=%v (%d probes)\n",
			load*100, agg.NICIngress/d, agg.QueueWait/d, agg.Service/d,
			agg.NICEgress/d, agg.Total/d, probes)
		probeIn += agg.NICIngress
		probeOut += agg.NICEgress
		probeN += probes
	}

	// The pipeline's always-on residency histograms measure the same NIC
	// stages the probes do — from the data traffic itself, no probes needed.
	// Probes ride the RSS class, which skips the NIC's PLB module; data
	// packets pay it (Tab. 4: +0.05µs RX, +0.35µs TX). Adding that class
	// delta, the two instruments must agree to within the histogram's
	// resolution.
	const plbDeltaRX, plbDeltaTX = 50 * albatross.Nanosecond, 350 * albatross.Nanosecond
	resid := pod.StageResidency()
	names := albatross.StageNames()
	stage := func(name string) *albatross.Histogram {
		for i, s := range names {
			if s == name {
				return resid[i]
			}
		}
		log.Fatalf("no stage %q", name)
		return nil
	}
	relErr := resid[0].RelativeError()

	fmt.Printf("\nprobe vs pipeline histograms (probe = RSS class + PLB delta):\n")
	fmt.Printf("  %-12s %10s %12s %12s %8s\n", "stage", "probe", "adjusted", "pipeline", "diff")
	for _, row := range []struct {
		name  string
		probe albatross.Duration
		delta albatross.Duration
	}{
		{"nic-ingress", probeIn / albatross.Duration(probeN), plbDeltaRX},
		{"nic-egress", probeOut / albatross.Duration(probeN), plbDeltaTX},
	} {
		adjusted := float64(row.probe + row.delta)
		pipeline := stage(row.name).Mean()
		diff := (adjusted - pipeline) / pipeline
		if diff < 0 {
			diff = -diff
		}
		fmt.Printf("  %-12s %10v %12.2fµs %12.2fµs %7.2f%%\n",
			row.name, row.probe, adjusted/1000, pipeline/1000, diff*100)
		if diff > relErr {
			log.Fatalf("%s: probe and pipeline disagree beyond histogram error (%.2f%% > %.2f%%)",
				row.name, diff*100, relErr*100)
		}
	}
	fmt.Printf("  (agreement bound: histogram relative error %.2f%%)\n", relErr*100)

	fmt.Println()
	fmt.Print(node.Report())
}
