// BGP proxy demo over real TCP on loopback (the paper's Fig. 7): a mock
// uplink switch, the BGP proxy pod, and three gateway pods. The pods speak
// iBGP to the proxy; the switch maintains ONE eBGP peer instead of three.
// A pod failover (BGP-graceful gateway migration, paper §7) is shown at
// the end: a replacement pod advertises the VIP before the old pod
// withdraws, so the switch always has a route.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"albatross"
	"albatross/internal/bgp"
	"albatross/internal/packet"
)

func main() {
	// ---- Uplink switch (AS 65000) -----------------------------------
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer swLn.Close()
	sw := bgp.NewSwitch(65000, 0xffff0001)
	go func() {
		for {
			c, err := swLn.Accept()
			if err != nil {
				return
			}
			go sw.AcceptPeer(c)
		}
	}()

	// ---- BGP proxy pod (AS 64512) ------------------------------------
	upConn, err := net.Dial("tcp", swLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := albatross.NewProxy(upConn, 64512, 65000, 0xaa000001)
	if err != nil {
		log.Fatal(err)
	}
	podLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer podLn.Close()
	go func() {
		for {
			c, err := podLn.Accept()
			if err != nil {
				return
			}
			go proxy.ServePod(c)
		}
	}()
	fmt.Printf("switch at %v, proxy upstream established\n", swLn.Addr())

	// ---- Three GW pods advertise one VIP -----------------------------
	vip := albatross.BGPPrefix{Addr: packet.IPv4Addr{203, 0, 113, 0}, Len: 24}
	newPod := func(id uint32) *albatross.BGPSpeaker {
		conn, err := net.Dial("tcp", podLn.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		sp := albatross.NewSpeaker(conn, albatross.BGPSpeakerConfig{
			AS: 64512, RouterID: id, PeerAS: 64512,
		})
		if err := sp.Start(); err != nil {
			log.Fatal(err)
		}
		return sp
	}
	pods := []*albatross.BGPSpeaker{newPod(101), newPod(102), newPod(103)}
	for i, p := range pods {
		if err := p.Announce([]albatross.BGPPrefix{vip}, nil); err != nil {
			log.Fatal(err)
		}
		_ = i
	}
	waitFor(func() bool { return sw.RIB().Len() == 1 })
	fmt.Printf("3 pods advertise %v -> switch sees %d peer and %d route\n",
		vip, sw.PeerCount(), sw.RIB().Len())

	// ---- Graceful gateway migration (paper §7) ------------------------
	// The replacement pod advertises FIRST, then the old pods withdraw:
	// the VIP never disappears from the switch.
	fmt.Println("migrating: new pod advertises before old pods withdraw ...")
	replacement := newPod(200)
	if err := replacement.Announce([]albatross.BGPPrefix{vip}, nil); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, p := range pods {
		p.Withdraw([]albatross.BGPPrefix{vip})
	}
	deadline := time.Now().Add(2 * time.Second)
	lost := false
	for time.Now().Before(deadline) {
		if sw.RIB().Len() == 0 {
			lost = true
			break
		}
		if proxy.AdvertisedCount() == 1 && proxy.PodCount() == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lost {
		fmt.Println("ERROR: VIP disappeared during migration")
	} else {
		fmt.Println("VIP stayed reachable throughout the migration")
	}

	for _, p := range pods {
		p.Close()
	}
	replacement.Close()
	proxy.Close()
	sw.Close()
	fmt.Println("done")
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !cond() {
		time.Sleep(5 * time.Millisecond)
	}
}
