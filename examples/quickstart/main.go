// Quickstart: build an Albatross node with one VPC-Internet gateway pod,
// drive tenant traffic through the full NIC-pipeline -> PLB -> CPU ->
// reorder -> egress path, and print what happened.
package main

import (
	"fmt"
	"log"

	"albatross"
)

func main() {
	// An Albatross server with the paper's defaults: dual-NUMA topology,
	// Tab. 4 NIC latencies, DDR5-4800 memory model, ~100MB L3 per node.
	node, err := albatross.New(albatross.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// 100K concurrent tenant flows across 10K tenants.
	flows := albatross.GenerateFlows(100000, 10000, 42)

	// One VPC-Internet gateway pod: 8 data cores, packet-level load
	// balancing (the default mode).
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name:      "gw0",
			Service:   albatross.VPCInternet,
			DataCores: 8,
			CtrlCores: 2,
		},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", pod)

	// Offer 4 Mpps of Poisson traffic for 200ms of virtual time.
	src := &albatross.Source{
		Flows: flows,
		Rate:  albatross.ConstantRate(4e6),
		Seed:  7,
		Sink:  pod.Sink(),
	}
	if err := src.Start(node.Engine); err != nil {
		log.Fatal(err)
	}
	node.RunFor(200 * albatross.Millisecond)
	src.Stop()
	node.RunFor(albatross.Millisecond) // drain

	fmt.Printf("rx=%d tx=%d (%.2f Mpps delivered)\n",
		pod.Rx, pod.Tx, float64(pod.Tx)/0.2/1e6)
	fmt.Printf("latency: p50=%.1fµs p99=%.1fµs max=%.1fµs (paper: ~20µs average)\n",
		float64(pod.Latency.Quantile(0.50))/1000,
		float64(pod.Latency.Quantile(0.99))/1000,
		float64(pod.Latency.Max())/1000)

	s := pod.PLB.Stats()
	fmt.Printf("plb: %d in-order, %d best-effort (disorder %.1e), %d HOL events\n",
		s.EmittedInOrder, s.EmittedBestEffort, s.DisorderRate(), s.HOLEvents)
	fmt.Printf("cache: %v\n", node.Cache(pod.Pod.NUMANode))
}
