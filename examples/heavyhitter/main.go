// Heavy hitter demo (the paper's Fig. 8 scenario): a single tenant flow
// ramps past one CPU core's capacity. Under RSS the flow is pinned to one
// core, which saturates and drops; under PLB the same flow is sprayed
// across all cores and absorbed.
package main

import (
	"fmt"
	"log"

	"albatross"
)

func run(mode int) (maxUtil float64, lossPct float64, tx uint64) {
	node, err := albatross.New(albatross.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	flows := albatross.GenerateFlows(20000, 100, 1)

	m := albatross.ModeRSS
	if mode == 1 {
		m = albatross.ModePLB
	}
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 3, CtrlCores: 1, Mode: m,
		},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Background: light multi-flow traffic (~10% per core).
	bg := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(0.6e6), Seed: 2, Sink: pod.Sink()}
	bg.Start(node.Engine)

	// The heavy hitter: ONE flow ramping to ~130% of a single core.
	hh := &albatross.Source{
		Flows: flows[:1],
		Rate:  albatross.StepRate(0, 2.6e6, albatross.Time(20*albatross.Millisecond)),
		Seed:  3,
		Sink:  pod.Sink(),
	}
	hh.Start(node.Engine)

	samplers := pod.UtilSamplers()
	node.RunFor(120 * albatross.Millisecond)

	for _, s := range samplers {
		if u := s.Sample(); u > maxUtil {
			maxUtil = u
		}
	}
	drops := pod.QueueDrops + pod.PLBDrops
	lossPct = float64(drops) / float64(pod.Rx) * 100
	return maxUtil, lossPct, pod.Tx
}

func main() {
	fmt.Println("heavy hitter vs 3 forwarding cores (paper Fig. 8)")
	fmt.Println()
	for mode, name := range []string{"RSS (flow-level hashing)", "PLB (packet-level spray)"} {
		util, loss, tx := run(mode)
		fmt.Printf("%-26s max core util %.0f%%  loss %.1f%%  delivered %d pkts\n",
			name, util*100, loss, tx)
	}
	fmt.Println()
	fmt.Println("RSS pins the heavy hitter to one core and melts it;")
	fmt.Println("PLB spreads the same flow across all cores with zero loss.")
}
