// Cluster upgrade: a rolling gray upgrade of a 3-node ECMP cluster under
// live traffic. One node at a time is drained (its route withdrawn
// administratively *before* its pods stop — make-before-break), upgraded,
// and rejoined, while the consistent-hash ECMP spray keeps the other two
// nodes serving every flow. The drill asserts the paper's gray-upgrade
// contract: zero packet loss end to end — no switch drops, no blackholed
// packets, no crash drops, every sprayed packet emitted.
//
// Because faults fire on virtual time from seeded generators, every run
// prints exactly the same numbers.
package main

import (
	"fmt"
	"log"

	"albatross"
)

func main() {
	// The rolling schedule: each node drains for 100ms, one after another,
	// with a 20ms settle gap between waves.
	const upgradeLen = 100 * albatross.Millisecond
	plan := (&albatross.FaultPlan{}).
		NodeDrain(20*albatross.Millisecond, 0, upgradeLen).
		NodeDrain(140*albatross.Millisecond, 1, upgradeLen).
		NodeDrain(260*albatross.Millisecond, 2, upgradeLen)

	cl, err := albatross.NewCluster(
		albatross.WithSeed(7),
		albatross.WithNodes(3),
		albatross.WithFaultPlan(plan),
	)
	if err != nil {
		log.Fatal(err)
	}

	flows := albatross.GenerateFlows(6000, 600, 7)
	if err := cl.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw", Service: albatross.VPCVPC,
			DataCores: 4, CtrlCores: 1, Mode: albatross.ModePLB},
		Flows: albatross.ServiceFlows(flows, 0),
	}); err != nil {
		log.Fatal(err)
	}

	src := &albatross.Source{
		Flows: flows,
		Rate:  albatross.ConstantRate(6e5),
		Seed:  8,
		Sink:  cl.Sink(),
	}
	if err := src.Start(cl.Engine); err != nil {
		log.Fatal(err)
	}
	// Run past the last rejoin (260ms + 100ms), then drain in-flight work.
	cl.RunFor(400 * albatross.Millisecond)
	src.Stop()
	cl.RunFor(10 * albatross.Millisecond)

	fmt.Println("upgrade log:")
	for _, e := range cl.FaultLog() {
		fmt.Println(" ", e)
	}

	var tx, crashDrops, restarts uint64
	fmt.Println("\nper node:")
	for _, m := range cl.Members() {
		pr := m.Node.Pods()[0]
		tx += pr.Tx
		crashDrops += pr.CrashDrops
		restarts += pr.Restarts
		fmt.Printf("  node %d [%s] ecmp-rx=%d tx=%d drains=%d restarts=%d p99=%.1fµs\n",
			m.Index, m.State(), m.Rx, pr.Tx, m.Drains, pr.Restarts,
			float64(pr.Latency.Quantile(0.99))/1000)
	}

	fmt.Printf("\ncluster: sprayed=%d tx=%d remapped=%d switch-drops=%d blackholed=%d crash-drops=%d\n",
		cl.Sprayed, tx, cl.Remapped, cl.Drops, cl.Blackholed(), crashDrops)

	// The gameday gate: a gray upgrade must be lossless. Every wave
	// withdrew its node's route before touching pods, so nothing was
	// blackholed at a dead link, nothing hit the switch with no eligible
	// next hop, and no pod dropped queued packets.
	zeroLoss := tx == cl.Sprayed && cl.Drops == 0 && cl.Blackholed() == 0 && crashDrops == 0
	if !zeroLoss {
		log.Fatalf("ZERO-LOSS ASSERTION FAILED: sprayed=%d tx=%d switch-drops=%d blackholed=%d crash-drops=%d",
			cl.Sprayed, tx, cl.Drops, cl.Blackholed(), crashDrops)
	}
	if restarts != 3 {
		log.Fatalf("expected one gray restart per node, got %d", restarts)
	}
	fmt.Println("zero-loss rolling upgrade: OK (all 3 nodes upgraded, every sprayed packet emitted)")

	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
}
