// Benchmarks that regenerate the paper's tables and figures. One benchmark
// per table/figure (quick scale; run cmd/albatross-bench for the full-
// scale reproduction), plus end-to-end packet-path microbenchmarks.
//
//	go test -bench=. -benchmem
package albatross

import (
	"runtime"
	"testing"

	"albatross/internal/eval"
	"albatross/internal/sim"
)

// benchExperiment runs a registered paper experiment once per iteration
// and fails the benchmark if its shape checks fail.
func benchExperiment(b *testing.B, id string) {
	exp, ok := eval.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := eval.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := exp.Run(cfg)
		if !r.Passed() {
			b.Fatalf("%s failed: %v", id, r.FailedChecks())
		}
	}
}

// Tables.
func BenchmarkTable3_ServiceThroughput(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkTable4_PipelineLatency(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkTable5_FPGAResources(b *testing.B)     { benchExperiment(b, "tab5") }
func BenchmarkTable6_LPMScale(b *testing.B)          { benchExperiment(b, "tab6") }

// Figures.
func BenchmarkFig4_PLBvsRSS(b *testing.B)             { benchExperiment(b, "fig4") }
func BenchmarkFig5_CacheHitRate(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig7_BGPProxy(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8_LoadBalance(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9_P99Latency(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10_UtilStddev(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkFig11_LatencyDistribution(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12_DropFlag(b *testing.B)            { benchExperiment(b, "fig12") }
func BenchmarkFig13_WithoutRateLimiter(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14_WithRateLimiter(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15_AZCost(b *testing.B)              { benchExperiment(b, "fig15") }
func BenchmarkFig16_NUMA(b *testing.B)                { benchExperiment(b, "fig16") }
func BenchmarkFig17_NUMABalancing(b *testing.B)       { benchExperiment(b, "fig17") }

// Appendix and extension experiments.
func BenchmarkSplitPCIeSavings(b *testing.B)  { benchExperiment(b, "split") }
func BenchmarkPriorityIsolation(b *testing.B) { benchExperiment(b, "priority") }
func BenchmarkElasticity(b *testing.B)        { benchExperiment(b, "elasticity") }
func BenchmarkSessionOffload(b *testing.B)    { benchExperiment(b, "offload") }

// Ablations.
func BenchmarkMemoryFrequency(b *testing.B)      { benchExperiment(b, "memfreq") }
func BenchmarkMetaPlacement(b *testing.B)        { benchExperiment(b, "meta") }
func BenchmarkStatefulNF(b *testing.B)           { benchExperiment(b, "stateful") }
func BenchmarkTwoStageMemory(b *testing.B)       { benchExperiment(b, "gopmem") }
func BenchmarkDriverTuning(b *testing.B)         { benchExperiment(b, "driver") }
func BenchmarkLLCPrefetch(b *testing.B)          { benchExperiment(b, "tuning") }
func BenchmarkReorderQueueTradeoff(b *testing.B) { benchExperiment(b, "ordq") }
func BenchmarkPodIsolation(b *testing.B)         { benchExperiment(b, "isolation") }

// BenchmarkEngineTimerChurn measures the schedule/cancel hot loop the PLB
// order-queue timers and CPU completions exercise: a sliding window of
// pending timers where every iteration cancels one and re-arms it. With the
// event pool and lazy cancellation this runs allocation-free; the 4-ary
// heap keeps sift depth shallow at this window size.
func BenchmarkEngineTimerChurn(b *testing.B) {
	const window = 1024
	e := sim.NewEngine()
	fn := func(any) {}
	timers := make([]sim.Timer, window)
	for i := range timers {
		timers[i] = e.AfterArg(sim.Duration(i+1)*sim.Microsecond, fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % window
		timers[slot].Stop()
		timers[slot] = e.AfterArg(sim.Duration(slot+1)*sim.Microsecond, fn, nil)
	}
}

// benchEval runs a fixed subset of fast quick-scale experiments through the
// RunAll worker pool at the given parallelism. Comparing the Serial and
// Parallel variants shows the harness speedup on multi-core hosts (they
// tie on GOMAXPROCS=1).
func benchEval(b *testing.B, parallelism int) {
	ids := []string{"tab4", "tab5", "fig7", "fig15", "gopmem"}
	exps := make([]eval.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := eval.Find(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	cfg := eval.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range eval.RunAll(exps, cfg, parallelism) {
			if !rec.Result.Passed() {
				b.Fatalf("%s failed: %v", rec.Exp.ID, rec.Result.FailedChecks())
			}
		}
	}
}

func BenchmarkEvalSerial(b *testing.B)   { benchEval(b, 1) }
func BenchmarkEvalParallel(b *testing.B) { benchEval(b, runtime.NumCPU()) }

// BenchmarkPacketPath measures the end-to-end virtual packet path
// (inject -> classify -> PLB dispatch -> core -> service -> reorder ->
// egress) in real ns per simulated packet.
func BenchmarkPacketPath(b *testing.B) {
	node, err := NewNode(NodeConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pod.Inject(flows[i%len(flows)], 256)
		if i%256 == 255 {
			node.Engine.Run()
		}
	}
	node.Engine.Run()
	b.StopTimer()
	if pod.Tx == 0 {
		b.Fatal("no packets emitted")
	}
}

// BenchmarkPacketPathTraced is BenchmarkPacketPath with the flight
// recorder tracing EVERY packet (TraceSampleEvery=1) instead of the
// default 1-in-1024 sampling: the worst-case observability overhead. Must
// stay 0 allocs/op — journeys come from the recorder's pool.
func BenchmarkPacketPathTraced(b *testing.B) {
	node, err := NewNode(NodeConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:             PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows:            ServiceFlows(flows, 0),
		TraceSampleEvery: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pod.Inject(flows[i%len(flows)], 256)
		if i%256 == 255 {
			node.Engine.Run()
		}
	}
	node.Engine.Run()
	b.StopTimer()
	if pod.Tx == 0 {
		b.Fatal("no packets emitted")
	}
	if pod.Flight().Sampled == 0 {
		b.Fatal("flight recorder sampled nothing")
	}
}

// BenchmarkPacketPathBurst is BenchmarkPacketPath with burst-batched
// dispatch (WithBurst(32)): back-to-back injections share one NIC arrival
// event per 32 packets and complete through arithmetic CPU admission plus
// one per-pod drain event instead of three events per packet. Must stay
// 0 allocs/op; the acceptance bar is ≥25% fewer ns/op than
// BenchmarkPacketPath on the same host.
func BenchmarkPacketPathBurst(b *testing.B) {
	node, err := NewNode(NodeConfig{Seed: 1, Burst: 32})
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pod.Inject(flows[i%len(flows)], 256)
		if i%256 == 255 {
			node.Engine.Run()
		}
	}
	node.Engine.Run()
	b.StopTimer()
	if pod.Tx == 0 {
		b.Fatal("no packets emitted")
	}
}

// BenchmarkPacketPathOthello is BenchmarkPacketPath through Node.Ingress
// with the stateless Othello flow-table backend steering every packet: the
// backend's two-array lookup rides in front of the legacy per-packet path.
func BenchmarkPacketPathOthello(b *testing.B) {
	node, err := NewNode(NodeConfig{Seed: 1, FlowBackend: "othello"})
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.Ingress(flows[i%len(flows)], 256)
		if i%256 == 255 {
			node.Engine.Run()
		}
	}
	node.Engine.Run()
	b.StopTimer()
	if pod.Tx == 0 {
		b.Fatal("no packets emitted")
	}
}

// BenchmarkPacketPathRecorded is BenchmarkPacketPath with a trace recorder
// wrapped around the pod sink, capturing every injection into the in-memory
// schedule. Must stay 0 allocs/op steady-state — the recorder appends
// value-type events into an amortized-growth slice.
func BenchmarkPacketPathRecorded(b *testing.B) {
	node, err := NewNode(NodeConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	pod, err := node.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := NewTraceRecorder(node.Engine)
	sink := rec.WrapSink(pod.Sink())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink(flows[i%len(flows)], 256)
		if i%256 == 255 {
			node.Engine.Run()
		}
	}
	node.Engine.Run()
	b.StopTimer()
	if pod.Tx == 0 {
		b.Fatal("no packets emitted")
	}
	if rec.Events() != b.N {
		b.Fatalf("recorded %d events, injected %d", rec.Events(), b.N)
	}
}

// benchClusterPath drives the cluster packet path — consistent-hash ECMP
// spray plus the full per-node staged pipeline — at the given width and
// shard count.
func benchClusterPath(b *testing.B, nodes, shards int) {
	cl, err := NewCluster(WithSeed(1), WithNodes(nodes), WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	flows := GenerateFlows(10000, 100, 1)
	if err := cl.AddPod(PodConfig{
		Spec:  PodSpec{Name: "gw", Service: VPCVPC, DataCores: 8, CtrlCores: 2},
		Flows: ServiceFlows(flows, 0),
	}); err != nil {
		b.Fatal(err)
	}
	sink := cl.Sink()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink(flows[i%len(flows)], 256)
		// Drain with bounded virtual time, not Engine.Run: the members'
		// BFD probe grids re-arm forever, so the event queue never empties.
		if i%256 == 255 {
			cl.RunFor(Millisecond)
		}
	}
	cl.RunFor(Millisecond)
	b.StopTimer()
	var tx uint64
	for _, m := range cl.Members() {
		for _, pr := range m.Node.Pods() {
			tx += pr.Tx
		}
	}
	if tx == 0 {
		b.Fatal("no packets emitted")
	}
}

// BenchmarkClusterPath measures the cluster path through a 3-node cluster
// on the single shared engine (shards pinned to 1 so the number tracks the
// same code path across hosts). The delta over BenchmarkPacketPath is the
// cluster layer's per-packet cost.
func BenchmarkClusterPath(b *testing.B) { benchClusterPath(b, 3, 1) }

// BenchmarkClusterPath8 is the 8-node single-engine baseline for the
// sharded comparison below: same width, shards=1.
func BenchmarkClusterPath8(b *testing.B) { benchClusterPath(b, 8, 1) }

// BenchmarkClusterPathSharded is the 8-node cluster on auto shards
// (min(GOMAXPROCS, 8) shard engines). Against BenchmarkClusterPath8 it
// shows the conservative-parallel speedup; on a single-core host the two
// tie (auto resolves to 1 shard) and the delta is the protocol overhead.
func BenchmarkClusterPathSharded(b *testing.B) { benchClusterPath(b, 8, 0) }
