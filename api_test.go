package albatross_test

import (
	"errors"
	"fmt"
	"testing"

	"albatross"
)

func newFacadeNode(t *testing.T, opts ...albatross.Option) *albatross.Node {
	t.Helper()
	n, err := albatross.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func addFacadePod(t *testing.T, n *albatross.Node, name string, cores int) *albatross.PodRuntime {
	t.Helper()
	flows := albatross.GenerateFlows(100, 10, 1)
	p, err := n.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: name, Service: albatross.VPCVPC,
			DataCores: cores, CtrlCores: 1},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSentinelErrors pins the error contract: every failure path through
// the facade classifies with errors.Is against the exported sentinels.
func TestSentinelErrors(t *testing.T) {
	// ErrBadConfig: an invalid fault plan is rejected at New.
	bad := (&albatross.FaultPlan{}).RxLoss(0, 0, 0, 5.0, albatross.Millisecond)
	if _, err := albatross.New(albatross.WithFaultPlan(bad)); !errors.Is(err, albatross.ErrBadConfig) {
		t.Fatalf("New(bad fault plan) = %v, want ErrBadConfig", err)
	}
	// ErrBadConfig: an invalid pod spec is rejected at AddPod.
	n := newFacadeNode(t, albatross.WithSeed(1))
	if _, err := n.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Service: albatross.VPCVPC, DataCores: 2, CtrlCores: 1},
	}); !errors.Is(err, albatross.ErrBadConfig) {
		t.Fatalf("AddPod(unnamed pod) = %v, want ErrBadConfig", err)
	}
	// ErrPodExhausted: more data cores than the server owns.
	if _, err := n.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "huge", Service: albatross.VPCVPC,
			DataCores: 100000, CtrlCores: 1},
	}); !errors.Is(err, albatross.ErrPodExhausted) {
		t.Fatalf("AddPod(100k cores) = %v, want ErrPodExhausted", err)
	}
	// ErrBadState: crashing a pod that is not active.
	p := addFacadePod(t, n, "gw0", 2)
	if err := n.InjectPodCrash(0, false, 10*albatross.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectPodCrash(0, false, 0); !errors.Is(err, albatross.ErrBadState) {
		t.Fatalf("double crash = %v, want ErrBadState", err)
	}
	n.RunFor(20 * albatross.Millisecond) // restart

	// ErrClosed: Stop and Close are terminal.
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); !errors.Is(err, albatross.ErrClosed) {
		t.Fatalf("second Stop = %v, want ErrClosed", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); !errors.Is(err, albatross.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := n.AddPod(albatross.PodConfig{}); !errors.Is(err, albatross.ErrClosed) {
		t.Fatalf("AddPod after Close = %v, want ErrClosed", err)
	}
}

// TestConstructorsDoNotPanic feeds hostile input to every facade
// constructor: the contract is an error return, never a panic.
func TestConstructorsDoNotPanic(t *testing.T) {
	calls := []struct {
		name string
		fn   func() error
	}{
		{"New with bad fault plan", func() error {
			_, err := albatross.New(albatross.WithFaultPlan(
				&albatross.FaultPlan{Faults: []albatross.FaultSpec{{Kind: albatross.FaultKind(200)}}}))
			return err
		}},
		{"NewNode with bad limiter", func() error {
			lc := albatross.DefaultLimiterConfig()
			lc.Stage1Rate = -1
			_, err := albatross.NewNode(albatross.NodeConfig{Limiter: &lc})
			return err
		}},
		{"NewSNAT with empty pool", func() error {
			_, err := albatross.NewSNAT(nil, 1024, 65535, 100, albatross.Second)
			return err
		}},
		{"NewSNAT with inverted port range", func() error {
			_, err := albatross.NewSNAT([]albatross.IPv4Addr{{1, 2, 3, 4}}, 5000, 100, 100, albatross.Second)
			return err
		}},
	}
	for _, c := range calls {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s panicked: %v", c.name, r)
				}
			}()
			if err := c.fn(); err == nil {
				t.Errorf("%s: expected an error", c.name)
			}
		}()
	}
}

// TestAliasesResolve exercises every re-exported alias and constant so a
// facade symbol can never silently detach from its internal definition.
func TestAliasesResolve(t *testing.T) {
	// Types: constructing a zero value proves the alias resolves.
	var (
		_ albatross.Engine
		_ albatross.Time
		_ albatross.Duration
		_ albatross.Node
		_ albatross.NodeConfig
		_ albatross.PodConfig
		_ albatross.PodRuntime
		_ albatross.ProbeResult
		_ albatross.PodSpec
		_ albatross.ServerConfig
		_ albatross.ServiceType
		_ albatross.ServiceFlow
		_ albatross.ACL
		_ albatross.ACLRule
		_ albatross.SNAT
		_ albatross.IPv4Addr
		_ albatross.Flow
		_ albatross.Source
		_ albatross.RateFn
		_ albatross.PLB
		_ albatross.PLBConfig
		_ albatross.PLBStats
		_ albatross.Limiter
		_ albatross.LimiterConfig
		_ albatross.BGPSpeaker
		_ albatross.BGPSpeakerConfig
		_ albatross.BGPProxy
		_ albatross.BGPPrefix
		_ albatross.UplinkSession
		_ albatross.UplinkConfig
		_ albatross.UplinkStats
		_ albatross.Experiment
		_ albatross.ExperimentConfig
		_ albatross.ExperimentResult
		_ albatross.CacheConfig
		_ albatross.Option
		_ albatross.FaultPlan
		_ albatross.FaultSpec
		_ albatross.FaultKind
		_ albatross.FaultEvent
	)
	if albatross.Second != 1e9*albatross.Nanosecond ||
		albatross.Millisecond != 1e6*albatross.Nanosecond ||
		albatross.Microsecond != 1e3*albatross.Nanosecond {
		t.Fatal("time unit constants inconsistent")
	}
	for _, st := range []albatross.ServiceType{albatross.VPCVPC, albatross.VPCInternet,
		albatross.VPCIDC, albatross.VPCCloudService} {
		if st.String() == "" {
			t.Fatalf("service type %d has no name", st)
		}
	}
	if albatross.ModePLB == albatross.ModeRSS {
		t.Fatal("load-balancing modes not distinct")
	}
	if albatross.ACLPermit == albatross.ACLDeny {
		t.Fatal("ACL actions not distinct")
	}
	kinds := []albatross.FaultKind{albatross.FaultCoreStall, albatross.FaultCoreFail,
		albatross.FaultPodCrash, albatross.FaultPodDrain, albatross.FaultReorderStress,
		albatross.FaultRxLoss, albatross.FaultBGPFlap}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("fault kind %d: empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	// Sentinels are distinct errors.
	sentinels := []error{albatross.ErrBadConfig, albatross.ErrPodExhausted,
		albatross.ErrClosed, albatross.ErrBadState}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %v and %v alias each other", a, b)
			}
		}
	}
}

// TestOptionsMatchConfigStruct pins the layering contract: New(options...)
// and NewNode(struct) build identical nodes.
func TestOptionsMatchConfigStruct(t *testing.T) {
	run := func(n *albatross.Node) uint64 {
		flows := albatross.GenerateFlows(500, 10, 3)
		p, err := n.AddPod(albatross.PodConfig{
			Spec: albatross.PodSpec{Name: "gw", Service: albatross.VPCVPC,
				DataCores: 2, CtrlCores: 1},
			Flows: albatross.ServiceFlows(flows, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(2e5),
			Seed: 4, Sink: p.Sink()}
		if err := src.Start(n.Engine); err != nil {
			t.Fatal(err)
		}
		n.RunFor(20 * albatross.Millisecond)
		src.Stop()
		n.RunFor(albatross.Millisecond)
		return p.Tx
	}
	lc := albatross.DefaultLimiterConfig()
	byOpts := newFacadeNode(t, albatross.WithSeed(9), albatross.WithLimiter(lc),
		albatross.WithCache(albatross.CacheConfig{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}))
	byStruct, err := albatross.NewNode(albatross.NodeConfig{Seed: 9, Limiter: &lc,
		Cache: albatross.CacheConfig{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := run(byOpts), run(byStruct); a != b || a == 0 {
		t.Fatalf("options run tx=%d, struct run tx=%d; want equal and positive", a, b)
	}
}

// TestFacadeFaultPlan drives a fault schedule end to end through the
// public API only.
func TestFacadeFaultPlan(t *testing.T) {
	plan := (&albatross.FaultPlan{}).
		CoreFail(5*albatross.Millisecond, 0, 1, 5*albatross.Millisecond).
		ReorderStress(15*albatross.Millisecond, 0, 0, 2*albatross.Millisecond, true, 0)
	n := newFacadeNode(t, albatross.WithSeed(2), albatross.WithFaultPlan(plan))
	p := addFacadePod(t, n, "gw0", 4)
	flows := albatross.GenerateFlows(500, 10, 2)
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(5e5),
		Seed: 3, Sink: p.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(30 * albatross.Millisecond)
	src.Stop()
	n.RunFor(albatross.Millisecond)

	log := n.FaultLog()
	if len(log) != 2 {
		t.Fatalf("fault log has %d events, want 2", len(log))
	}
	for _, e := range log {
		if e.Err != nil {
			t.Fatalf("fault %v errored: %v", e.Fault.Kind, e.Err)
		}
		if fmt.Sprint(e) == "" {
			t.Fatal("fault event renders empty")
		}
	}
	if !p.PLB.CoreUp(1) {
		t.Fatal("core 1 not restored after the fail window")
	}
}
