package albatross

import (
	"io"
	"net/http"

	"albatross/internal/metrics"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// Traffic-source construction. NewSource replaces hand-filled Source
// literals with a validated functional-options constructor; every option
// error wraps ErrBadConfig.
type (
	// SourceOption configures a traffic source built with NewSource.
	SourceOption = workload.Option
)

// NewSource builds a validated Poisson traffic source. WithFlows, WithRate
// and WithSink are required.
func NewSource(opts ...SourceOption) (*Source, error) { return workload.New(opts...) }

// WithFlows sets the flow set the source draws arrivals from.
func WithFlows(flows []Flow) SourceOption { return workload.WithFlows(flows) }

// WithRate sets the offered-rate function (ConstantRate, StepRate, ...).
func WithRate(rate RateFn) SourceOption { return workload.WithRate(rate) }

// WithSourceSeed seeds the source's private RNG stream. (The deployment
// option WithSeed seeds the node; two sources on one engine should use
// distinct source seeds.)
func WithSourceSeed(seed uint64) SourceOption { return workload.WithSeed(seed) }

// WithSink sets the function each generated packet is delivered to
// (PodRuntime.Sink, Cluster.Sink, or a trace-recording wrapper).
func WithSink(sink func(Flow, int)) SourceOption { return workload.WithSink(sink) }

// WithPacketBytes sets the simulated packet size in bytes (default 256).
func WithPacketBytes(n int) SourceOption { return workload.WithPacketBytes(n) }

// WithZipf skews per-flow popularity with a Zipf distribution of the given
// exponent (0 = uniform).
func WithZipf(exponent float64) SourceOption { return workload.WithZipf(exponent) }

// Trace record/replay types (see DESIGN.md §10). A Trace captures the
// exact packet injection schedule of a run; replaying it against a fresh
// deployment reproduces the run byte-for-byte, and replaying it under a
// different fault plan turns the outcome diff into a gameday drill.
type (
	// Trace is a recorded injection schedule plus its header.
	Trace = trace.Trace
	// TraceEvent is one recorded packet injection.
	TraceEvent = trace.Event
	// TraceHeader is the trace's JSON metadata (also saved as a sidecar).
	TraceHeader = trace.Header
	// TraceRecorder captures a live run's schedule (Cluster.RecordingSink,
	// TraceRecorder.WrapSink).
	TraceRecorder = trace.Recorder
	// TraceReplayer drives an engine from a trace (Cluster.ReplayTrace).
	TraceReplayer = trace.Replayer
	// ReplayDiff is a structural comparison of two outcome reports
	// (Cluster.Outcome) from replays of one trace.
	ReplayDiff = trace.DiffReport
	// ReplayDiffLine is one changed line of a ReplayDiff.
	ReplayDiffLine = trace.DiffLine
)

// ErrBadTrace reports a malformed trace artifact (wraps ErrBadConfig).
var ErrBadTrace = trace.ErrBadTrace

// NewTraceRecorder creates a recorder; virtual timestamps are relative to
// the engine's current time.
func NewTraceRecorder(engine *Engine) *TraceRecorder { return trace.NewRecorder(engine) }

// ReadTrace decodes a trace artifact from r.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReadTraceFile loads a trace artifact saved by Trace.WriteFile.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// TraceFromPcap imports a libpcap capture as a replayable trace; frames
// that do not decode to a tenant flow are counted in skipped.
func TraceFromPcap(r io.Reader) (t *Trace, skipped int, err error) { return trace.FromPcap(r) }

// ReplayTraceInto replays t into an arbitrary sink on engine — the
// low-level form of Cluster.ReplayTrace for single-node runs
// (PodRuntime.Sink).
func ReplayTraceInto(engine *Engine, t *Trace, sink func(Flow, int)) (*TraceReplayer, error) {
	return trace.Replay(engine, t, sink)
}

// DiffOutcomes compares two outcome reports line by line.
func DiffOutcomes(labelA, reportA, labelB, reportB string) *ReplayDiff {
	return trace.Diff(labelA, reportA, labelB, reportB)
}

// MetricsHandler serves a metrics snapshot as Prometheus text exposition;
// snap is called per request, off the simulation's hot path.
func MetricsHandler(snap func() *MetricsSnapshot) http.Handler { return metrics.Handler(snap) }

// MetricsJSONHandler serves the same snapshot as MetricsHandler in JSON
// form (the /metrics.json endpoint).
func MetricsJSONHandler(snap func() *MetricsSnapshot) http.Handler { return metrics.JSONHandler(snap) }

// Timeline is the virtual-time telemetry sampler: per-tick metric series
// recorded every WithSnapshotEvery of virtual time (Cluster.Timeline),
// exported as CSV/JSON. Series are byte-identical at any shard count and
// burst size for a fixed seed.
type Timeline = metrics.Timeline

// SeriesHandler serves a timeline as CSV (the /series endpoint); tl is
// called per request and may return nil (404) while sampling is off.
func SeriesHandler(tl func() *Timeline) http.Handler { return metrics.SeriesHandler(tl) }

// SeriesJSONHandler serves a timeline as JSON (the /series.json endpoint),
// with the same nil-means-404 contract as SeriesHandler.
func SeriesJSONHandler(tl func() *Timeline) http.Handler { return metrics.SeriesJSONHandler(tl) }

// Content types served by the metrics/series HTTP handlers.
const (
	// MetricsContentType is the Prometheus text exposition content type
	// served by MetricsHandler.
	MetricsContentType = metrics.PrometheusContentType
	// MetricsJSONContentType is served by MetricsJSONHandler and
	// SeriesJSONHandler.
	MetricsJSONContentType = metrics.JSONContentType
	// SeriesContentType is the CSV content type served by SeriesHandler.
	SeriesContentType = metrics.CSVContentType
)
