package albatross

import (
	"encoding/json"
	"os"
	"testing"
)

// benchRecord mirrors one entry of BENCH_packetpath.json (written by
// `make bench`).
type benchRecord struct {
	Benchmark  string `json:"benchmark"`
	NsPerOp    int64  `json:"ns_per_op"`
	BytesPerOp int64  `json:"bytes_per_op"`
	AllocsOp   int64  `json:"allocs_per_op"`
}

// TestBenchGuard re-measures the single-engine cluster packet path and
// fails when it has regressed more than 10% against the committed
// BENCH_packetpath.json baseline. It is the tripwire for the sharded
// execution layer: shards=1 must keep the legacy hot path (one predicted
// branch is the entire budget). Benchmarks are too noisy for `go test`
// defaults, so the guard only arms under ALBATROSS_BENCH_GUARD=1 —
// `make bench` sets it before re-recording the baseline.
func TestBenchGuard(t *testing.T) {
	if os.Getenv("ALBATROSS_BENCH_GUARD") != "1" {
		t.Skip("set ALBATROSS_BENCH_GUARD=1 to arm (done by `make bench`)")
	}
	data, err := os.ReadFile("BENCH_packetpath.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("parsing BENCH_packetpath.json: %v", err)
	}
	var baseline int64
	for _, r := range records {
		if r.Benchmark == "BenchmarkClusterPath" {
			baseline = r.NsPerOp
		}
	}
	if baseline == 0 {
		t.Fatal("BenchmarkClusterPath not in committed baseline")
	}

	res := testing.Benchmark(BenchmarkClusterPath)
	got := res.NsPerOp()
	limit := baseline + baseline/10
	t.Logf("BenchmarkClusterPath: %d ns/op (baseline %d, limit %d)", got, baseline, limit)
	if got > limit {
		t.Fatalf("cluster path regressed >10%%: %d ns/op vs %d ns/op baseline", got, baseline)
	}
}
