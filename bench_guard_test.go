package albatross

import (
	"encoding/json"
	"os"
	"testing"
)

// benchRecord mirrors one entry of BENCH_packetpath.json (written by
// `make bench`).
type benchRecord struct {
	Benchmark  string `json:"benchmark"`
	NsPerOp    int64  `json:"ns_per_op"`
	BytesPerOp int64  `json:"bytes_per_op"`
	AllocsOp   int64  `json:"allocs_per_op"`
}

// TestBenchGuard re-measures the guarded packet-path benchmarks and fails
// when any has regressed more than 10% against the committed
// BENCH_packetpath.json baseline. BenchmarkClusterPath is the tripwire for
// the sharded execution layer (shards=1 must keep the legacy hot path — one
// predicted branch is the entire budget); BenchmarkPacketPath and
// BenchmarkPacketPathTraced guard the single-node pipeline and its
// flight-recorder overhead against burst/backed-related creep. Benchmarks
// are too noisy for `go test` defaults, so the guard only arms under
// ALBATROSS_BENCH_GUARD=1 — `make bench` sets it before re-recording the
// baseline.
func TestBenchGuard(t *testing.T) {
	if os.Getenv("ALBATROSS_BENCH_GUARD") != "1" {
		t.Skip("set ALBATROSS_BENCH_GUARD=1 to arm (done by `make bench`)")
	}
	data, err := os.ReadFile("BENCH_packetpath.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("parsing BENCH_packetpath.json: %v", err)
	}
	baselines := make(map[string]int64, len(records))
	for _, r := range records {
		baselines[r.Benchmark] = r.NsPerOp
	}

	guarded := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkPacketPath", BenchmarkPacketPath},
		{"BenchmarkPacketPathTraced", BenchmarkPacketPathTraced},
		{"BenchmarkClusterPath", BenchmarkClusterPath},
	}
	for _, g := range guarded {
		baseline := baselines[g.name]
		if baseline == 0 {
			t.Fatalf("%s not in committed baseline", g.name)
		}
		res := testing.Benchmark(g.fn)
		got := res.NsPerOp()
		limit := baseline + baseline/10
		t.Logf("%s: %d ns/op (baseline %d, limit %d)", g.name, got, baseline, limit)
		if got > limit {
			t.Errorf("%s regressed >10%%: %d ns/op vs %d ns/op baseline", g.name, got, baseline)
		}
	}
}
