package albatross

import (
	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/faults"
)

// Sentinel errors. Every facade constructor returns (never panics on) an
// error wrapping one of these, whichever internal layer detected the
// problem — classify with errors.Is.
var (
	// ErrBadConfig reports an invalid configuration value.
	ErrBadConfig = errs.BadConfig
	// ErrPodExhausted reports that a resource pool (cores, VFs, reorder
	// queues, NAT bindings, ...) cannot satisfy an allocation.
	ErrPodExhausted = errs.Exhausted
	// ErrClosed reports an operation on a Node or PodRuntime whose
	// lifecycle has ended (Node.Close / PodRuntime.Stop).
	ErrClosed = errs.Closed
	// ErrBadState reports an operation that is not legal in the
	// component's current lifecycle state.
	ErrBadState = errs.BadState
)

// CacheConfig is the per-NUMA L3 cache geometry.
type CacheConfig = cachesim.Config

// Option configures a Node built with New. Options layer over NodeConfig:
// the struct keeps working, and New(WithSeed(1)) is equivalent to
// NewNode(NodeConfig{Seed: 1}).
type Option func(*NodeConfig)

// WithSeed sets the node's master RNG seed.
func WithSeed(seed uint64) Option {
	return func(c *NodeConfig) { c.Seed = seed }
}

// WithServerConfig sets the server hardware description.
func WithServerConfig(sc ServerConfig) Option {
	return func(c *NodeConfig) { c.Server = sc }
}

// WithCache sets the per-NUMA L3 cache geometry.
func WithCache(cc CacheConfig) Option {
	return func(c *NodeConfig) { c.Cache = cc }
}

// WithLimiter enables gateway overload protection.
func WithLimiter(lc LimiterConfig) Option {
	return func(c *NodeConfig) { c.Limiter = &lc }
}

// WithFaultPlan arms a deterministic fault-injection schedule; fault times
// are relative to node creation. See FaultPlan.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *NodeConfig) { c.Faults = p }
}

// New creates an Albatross server simulation from functional options.
func New(opts ...Option) (*Node, error) {
	var cfg NodeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewNode(cfg)
}

// Fault-injection types (see internal/faults). A FaultPlan is built with
// its chaining methods and armed via WithFaultPlan (or NodeConfig.Faults);
// faults fire on virtual time, so runs are byte-identical across
// repetitions at a fixed seed. The node's degradation responses — PLB
// spray-mask eviction, tenant redirection to a sibling pod, automatic
// RSS fallback, BGP proxy re-advertisement — are inspected through
// Node.FaultLog, PodRuntime counters, and PLBStats.
type (
	// FaultPlan is an ordered, deterministic fault schedule.
	FaultPlan = faults.Plan
	// FaultSpec is one scheduled fault.
	FaultSpec = faults.Fault
	// FaultKind identifies a fault type.
	FaultKind = faults.Kind
	// FaultEvent is one fired-fault log entry (Node.FaultLog).
	FaultEvent = faults.Event
)

// Fault kinds.
const (
	// FaultCoreStall multiplies one core's service times (sick core).
	FaultCoreStall = faults.KindCoreStall
	// FaultCoreFail takes one core offline; the PLB evicts it from the
	// spray mask and releases its in-flight reorder state.
	FaultCoreFail = faults.KindCoreFail
	// FaultPodCrash kills a pod abruptly; tenants redirect to a sibling
	// until the container restarts.
	FaultPodCrash = faults.KindPodCrash
	// FaultPodDrain is the graceful gray-upgrade drain (zero loss).
	FaultPodDrain = faults.KindPodDrain
	// FaultReorderStress forces HOL blocking / FIFO overflow on one PLB
	// order queue.
	FaultReorderStress = faults.KindReorderStress
	// FaultRxLoss drops packets on one core's RX path.
	FaultRxLoss = faults.KindRxLoss
	// FaultBGPFlap takes the BGP uplink down; BFD detects, the proxy
	// re-advertises.
	FaultBGPFlap = faults.KindBGPFlap
)
