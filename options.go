package albatross

import (
	"fmt"

	"albatross/internal/cachesim"
	"albatross/internal/cluster"
	"albatross/internal/controlplane"
	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/faults"
)

// Sentinel errors. Every facade constructor returns (never panics on) an
// error wrapping one of these, whichever internal layer detected the
// problem — classify with errors.Is.
var (
	// ErrBadConfig reports an invalid configuration value.
	ErrBadConfig = errs.BadConfig
	// ErrPodExhausted reports that a resource pool (cores, VFs, reorder
	// queues, NAT bindings, ...) cannot satisfy an allocation.
	ErrPodExhausted = errs.Exhausted
	// ErrClosed reports an operation on a Node or PodRuntime whose
	// lifecycle has ended (Node.Close / PodRuntime.Stop).
	ErrClosed = errs.Closed
	// ErrBadState reports an operation that is not legal in the
	// component's current lifecycle state.
	ErrBadState = errs.BadState
)

// CacheConfig is the per-NUMA L3 cache geometry.
type CacheConfig = cachesim.Config

// Config is the resolved facade configuration: a per-node template plus
// the deployment width. Options write into it; New and NewCluster read it.
type Config struct {
	// Node is the per-server configuration (shared by every cluster member).
	Node NodeConfig
	// Nodes is the deployment width: 1 = a single Node (New), >1 = a
	// multi-node Cluster behind consistent-hash ECMP (NewCluster).
	Nodes int
	// Shards partitions a cluster across engine shards: 0 = auto
	// (min(GOMAXPROCS, Nodes)), 1 = single shared engine, k > 1 = k shard
	// engines. Outcomes are byte-identical at any shard count.
	Shards int
	// SnapshotEvery samples a telemetry timeline every this much virtual
	// time on NewCluster deployments (0 = off). See WithSnapshotEvery.
	SnapshotEvery Duration
	// Spec is a desired-state block attached to NewCluster deployments:
	// a Reconciler is built over the cluster and armed on its engine. See
	// WithSpec.
	Spec *ReconcileSpec
}

// Option configures a deployment built with New or NewCluster. Options
// layer over the config structs: they keep working, and New(WithSeed(1))
// is equivalent to NewNode(NodeConfig{Seed: 1}).
type Option func(*Config)

// WithSeed sets the master RNG seed (per-member seeds derive from it in a
// cluster).
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Node.Seed = seed }
}

// WithServerConfig sets the server hardware description.
func WithServerConfig(sc ServerConfig) Option {
	return func(c *Config) { c.Node.Server = sc }
}

// WithCache sets the per-NUMA L3 cache geometry.
func WithCache(cc CacheConfig) Option {
	return func(c *Config) { c.Node.Cache = cc }
}

// WithLimiter enables gateway overload protection.
func WithLimiter(lc LimiterConfig) Option {
	return func(c *Config) { c.Node.Limiter = &lc }
}

// WithFaultPlan arms a deterministic fault-injection schedule; fault times
// are relative to creation. With NewCluster the plan is cluster-level and
// may include node-granularity kinds (FaultNodeCrash, FaultNodeDrain,
// FaultUplinkWithdraw). See FaultPlan.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *Config) { c.Node.Faults = p }
}

// WithNodes sets the deployment width to n gateway servers. New accepts
// only n ≤ 1; wider deployments are built with NewCluster.
func WithNodes(n int) Option {
	return func(c *Config) { c.Nodes = n }
}

// WithShards partitions a NewCluster deployment across n engine shards so
// a run uses up to n cores: 0 (the default) auto-sizes to
// min(GOMAXPROCS, nodes), 1 forces the single shared engine. Sharding is
// a pure execution strategy — Outcome reports and metrics exports are
// byte-identical at any shard count.
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithSnapshotEvery enables the virtual-time telemetry timeline on a
// NewCluster deployment: every d of virtual time the cluster-level series
// (availability, eligible members, per-tick switch-plane counter deltas)
// are sampled into Cluster.Timeline(). Sampling rides
// RunFor's control clock — tick boundaries are epoch barriers under the
// sharded engine — so the recorded series are byte-identical at any shard
// count and burst size, and the packet hot path is untouched. d = 0 (the
// default) disables sampling.
func WithSnapshotEvery(d Duration) Option {
	return func(c *Config) { c.SnapshotEvery = d }
}

// WithFlowBackend selects the node-level flow-table backend steering
// Node.Ingress (and cluster member ingress) across pods: "session" keeps a
// per-flow session table, "othello" is the Concury-style stateless
// minimal-perfect-hash map with zero-disruption pool updates. Empty (the
// default) keeps the legacy first-pod path.
func WithFlowBackend(name string) Option {
	return func(c *Config) { c.Node.FlowBackend = name }
}

// WithBurst enables burst-batched dispatch: up to n same-instant injections
// share one NIC arrival event and complete through arithmetic CPU admission
// plus one per-pod drain event. n <= 1 (the default) keeps the per-packet
// event path bit-for-bit; outcomes at n > 1 are invariant in n for a fixed
// backend. Burst mode disables the flight recorder.
func WithBurst(n int) Option {
	return func(c *Config) { c.Node.Burst = n }
}

// WithSpec attaches a desired-state block to a NewCluster deployment: a
// Reconciler is built from spec.ClusterSpec() and spec.Config(), armed on
// the cluster engine, and registered as the cluster's controller —
// retrieve it with Cluster.Controller().(*Reconciler). The spec must
// cover every member of the initial fleet (WithNodes). Load a spec from
// YAML with LoadSpec / LoadSpecFile, or fill a ReconcileSpec directly.
func WithSpec(spec *ReconcileSpec) Option {
	return func(c *Config) { c.Spec = spec }
}

func resolve(opts []Option) Config {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// New creates a single Albatross server simulation from functional options.
func New(opts ...Option) (*Node, error) {
	cfg := resolve(opts)
	if cfg.Nodes > 1 {
		return nil, fmt.Errorf("albatross: New builds one server; use NewCluster for %d nodes: %w",
			cfg.Nodes, errs.BadConfig)
	}
	return core.NewNode(cfg.Node)
}

// NewCluster creates a multi-node deployment: WithNodes(n) servers behind
// consistent-hash ECMP on one shared virtual-time engine, each with a
// modeled BGP uplink. A WithFaultPlan plan is armed at cluster level, so
// it may mix node- and pod-granularity faults.
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg := resolve(opts)
	if cfg.Nodes == 0 {
		cfg.Nodes = 1
	}
	plan := cfg.Node.Faults
	cfg.Node.Faults = nil
	c, err := cluster.New(cluster.Config{
		Nodes:         cfg.Nodes,
		Seed:          cfg.Node.Seed,
		Node:          cfg.Node,
		Faults:        plan,
		Shards:        cfg.Shards,
		SnapshotEvery: cfg.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Spec != nil {
		if _, err := controlplane.NewReconciler(c, cfg.Spec.ClusterSpec(), cfg.Spec.Config()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Fault-injection types (see internal/faults). A FaultPlan is built with
// its chaining methods and armed via WithFaultPlan (or NodeConfig.Faults);
// faults fire on virtual time, so runs are byte-identical across
// repetitions at a fixed seed. The node's degradation responses — PLB
// spray-mask eviction, tenant redirection to a sibling pod, automatic
// RSS fallback, BGP proxy re-advertisement — are inspected through
// Node.FaultLog, PodRuntime counters, and PLBStats.
type (
	// FaultPlan is an ordered, deterministic fault schedule.
	FaultPlan = faults.Plan
	// FaultSpec is one scheduled fault.
	FaultSpec = faults.Fault
	// FaultKind identifies a fault type.
	FaultKind = faults.Kind
	// FaultEvent is one fired-fault log entry (Node.FaultLog).
	FaultEvent = faults.Event
)

// Fault kinds.
const (
	// FaultCoreStall multiplies one core's service times (sick core).
	FaultCoreStall = faults.KindCoreStall
	// FaultCoreFail takes one core offline; the PLB evicts it from the
	// spray mask and releases its in-flight reorder state.
	FaultCoreFail = faults.KindCoreFail
	// FaultPodCrash kills a pod abruptly; tenants redirect to a sibling
	// until the container restarts.
	FaultPodCrash = faults.KindPodCrash
	// FaultPodDrain is the graceful gray-upgrade drain (zero loss).
	FaultPodDrain = faults.KindPodDrain
	// FaultReorderStress forces HOL blocking / FIFO overflow on one PLB
	// order queue.
	FaultReorderStress = faults.KindReorderStress
	// FaultRxLoss drops packets on one core's RX path.
	FaultRxLoss = faults.KindRxLoss
	// FaultBGPFlap takes the BGP uplink down; BFD detects, the proxy
	// re-advertises.
	FaultBGPFlap = faults.KindBGPFlap
	// FaultNodeDrain gray-upgrades a whole cluster member: administrative
	// route withdrawal first (make-before-break, zero loss), pods drain,
	// rejoin after Duration. Cluster plans only.
	FaultNodeDrain = faults.KindNodeDrain
	// FaultNodeCrash kills a cluster member abruptly; BFD detection bounds
	// the blackhole window, then flows re-ECMP to survivors. Cluster plans
	// only.
	FaultNodeCrash = faults.KindNodeCrash
	// FaultUplinkWithdraw administratively withdraws one member's route
	// without touching its pods. Cluster plans only.
	FaultUplinkWithdraw = faults.KindUplinkWithdraw
)
